//! **fec-trace** — structured tracing, metrics, and profiling for the
//! synthesis stack, with no dependencies outside `std`.
//!
//! The design follows the same discipline as the SAT core's
//! `ProofLogger`: instrumentation must be *zero-cost when disabled*.
//! Every emission site is guarded by [`enabled`], a single relaxed
//! atomic load against the installed maximum level; with no collector
//! installed (the default) that load reads `0` and the site costs one
//! predictable branch. Hot paths (the CDCL conflict loop) are
//! additionally *sampled* — they emit periodic snapshots at restart
//! boundaries rather than per-event records, so even fully enabled
//! tracing stays out of the propagation loop.
//!
//! # Model
//!
//! - an **event** is an instantaneous record: a level, a name
//!   (dot-separated taxonomy, e.g. `cegis.counterexample`), and typed
//!   key/value fields;
//! - a **span** is a named duration: entered with [`Span::enter`] (or
//!   the [`span!`] macro), closed on drop, timed with a monotonic
//!   clock;
//! - a **counter** is a named monotone accumulator; deltas are folded
//!   into the end-of-run metrics report and graphed by the Chrome
//!   sink;
//! - a **histogram** is a named log-bucketed sample distribution
//!   ([`Histogram`]: 65 power-of-two buckets, mergeable); hot paths
//!   flush pre-counted batches with [`hist_n`] so per-sample cost
//!   stays out of inner loops;
//! - a **gauge** is a named instantaneous level (last write wins;
//!   min/max envelope kept) — learned-clause DB size, trail depth,
//!   share-queue depth;
//! - a **progress** record is a heartbeat emitted by the watchdog
//!   thread ([`TraceConfig::progress_every`]): elapsed time, the
//!   global [`advance`] counter and its delta, and stall detection
//!   over a configurable window ([`TraceConfig::stall_after`]).
//!
//! # Sinks
//!
//! [`TraceConfig`] installs any combination of:
//!
//! - **stderr**: human-readable log lines, filtered by the configured
//!   level;
//! - **JSONL**: one self-describing JSON object per record (schema
//!   checked by [`validate_jsonl`]);
//! - **Chrome `trace_event`**: a JSON array loadable in Perfetto /
//!   `about:tracing`, with spans as `B`/`E` pairs, counters as `C`
//!   tracks, and thread-name metadata — flamegraphs for free;
//! - **metrics**: an in-memory aggregation (counter totals, span
//!   count/total/min/max) rendered as a report by [`metrics`] /
//!   written to a file by [`flush`].
//!
//! # Example
//!
//! ```
//! use fec_trace::{Level, TraceConfig};
//!
//! let buf = fec_trace::test_support::SharedBuf::default();
//! fec_trace::install(TraceConfig::new(Level::Debug).jsonl_writer(Box::new(buf.clone())));
//! {
//!     let _span = fec_trace::span!(Level::Info, "demo.work", "size" => 42u64);
//!     fec_trace::counter!(Level::Info, "demo.items", 3);
//! }
//! let report = fec_trace::shutdown().expect("collector was installed");
//! assert_eq!(report.counters["demo.items"], 3);
//! assert_eq!(report.spans["demo.work"].count, 1);
//! assert!(fec_trace::validate_jsonl(&buf.take_string()).unwrap() >= 3);
//! ```

#![forbid(unsafe_code)]

mod instrument;
mod json;
mod metrics;
mod sink;

pub use instrument::{
    bucket_floor, bucket_index, GaugeAgg, Histogram, StallDetector, HIST_BUCKETS,
};
pub use json::{parse_json, Json, JsonError};
pub use metrics::{MetricsReport, SpanAgg};
pub use sink::validate_jsonl;

use sink::{ChromeSink, JsonlSink, Sink, StderrSink};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Levels
// ---------------------------------------------------------------------------

/// Severity / verbosity of a record. `Off` disables everything.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
#[repr(u8)]
pub enum Level {
    /// No emission at all (the default global state).
    #[default]
    Off = 0,
    /// Unrecoverable problems.
    Error = 1,
    /// Suspicious but non-fatal conditions.
    Warn = 2,
    /// Run-level progress: CEGIS iterations, bounds, verdicts.
    Info = 3,
    /// Subsystem detail: solver snapshots, encoding sizes.
    Debug = 4,
    /// Everything, including per-query portfolio breakdowns.
    Trace = 5,
}

impl Level {
    /// Parses a CLI level name (`off|error|warn|info|debug|trace`).
    pub fn parse(s: &str) -> Option<Level> {
        Some(match s.to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Level::Off,
            "error" => Level::Error,
            "warn" | "warning" => Level::Warn,
            "info" => Level::Info,
            "debug" => Level::Debug,
            "trace" => Level::Trace,
            _ => return None,
        })
    }

    /// The canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------------
// Values and records
// ---------------------------------------------------------------------------

/// A typed field value attached to a record.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::I64(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// What a record describes.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Kind {
    /// A point-in-time event.
    Event,
    /// A span opening.
    SpanBegin,
    /// A span closing; `dur_us` is the measured duration.
    SpanEnd { dur_us: u64 },
    /// A counter increment.
    Counter { delta: i64 },
    /// `count` histogram samples of `value` (log-bucketed by the
    /// metrics registry; see [`Histogram`]).
    Hist { value: u64, count: u64 },
    /// An absolute gauge write (last value wins; min/max kept).
    Gauge { value: i64 },
    /// A periodic heartbeat from the progress watchdog.
    Progress,
}

/// One record as handed to sinks.
pub struct Record<'a> {
    /// Microseconds since the collector was installed.
    pub ts_us: u64,
    /// Dense per-thread id (1-based, in first-emission order).
    pub tid: u64,
    /// Thread name, when one was set (see [`set_thread_name`]).
    pub thread_name: Option<&'a str>,
    pub level: Level,
    pub name: &'a str,
    pub kind: Kind,
    pub fields: &'a [(&'a str, Value)],
}

// ---------------------------------------------------------------------------
// Global collector
// ---------------------------------------------------------------------------

/// Maximum level any installed sink accepts; 0 = nothing installed.
/// This is the *only* state the disabled fast path reads.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);

static COLLECTOR: Mutex<Option<Collector>> = Mutex::new(None);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static THREAD_NAME: std::cell::RefCell<Option<String>> = const { std::cell::RefCell::new(None) };
}

/// Names the current thread in trace output (Chrome metadata rows,
/// JSONL `thread` field). Cheap; safe to call with tracing disabled.
pub fn set_thread_name(name: impl Into<String>) {
    THREAD_NAME.with(|n| *n.borrow_mut() = Some(name.into()));
}

/// `true` when a record at `level` would reach at least one sink.
///
/// This is the zero-cost-when-disabled guard: a single relaxed atomic
/// load. Call it before building fields for an emission (the provided
/// macros do so automatically).
#[inline]
pub fn enabled(level: Level) -> bool {
    let l = level as u8;
    l != 0 && l <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// [`enabled`] with an additional per-run cap: a record passes only if
/// it is within both the global sink level *and* `cap`. Lets one
/// configuration (e.g. a baseline run in an A/B bench) silence its own
/// instrumentation while another run traces fully.
#[inline]
pub fn enabled_at(cap: Level, level: Level) -> bool {
    level <= cap && enabled(level)
}

struct Collector {
    sinks: Vec<SinkEntry>,
    metrics: metrics::Registry,
    metrics_out: Option<PathBuf>,
}

struct SinkEntry {
    /// Maximum level this sink accepts.
    level: Level,
    sink: Box<dyn Sink + Send>,
}

/// Configuration for [`install`]. Build with [`TraceConfig::new`], add
/// sinks, then install. Installing replaces any previous collector.
pub struct TraceConfig {
    level: Level,
    stderr: bool,
    jsonl: Option<Box<dyn Write + Send>>,
    chrome: Option<Box<dyn Write + Send>>,
    metrics_out: Option<PathBuf>,
    progress_every: Option<Duration>,
    stall_after: Duration,
    progress_tty: bool,
}

impl TraceConfig {
    /// A configuration whose stderr sink (if enabled) filters at
    /// `level`. File sinks always record at `Trace` detail: they are
    /// explicitly requested and post-processed, so more is better.
    pub fn new(level: Level) -> TraceConfig {
        TraceConfig {
            level,
            stderr: false,
            jsonl: None,
            chrome: None,
            metrics_out: None,
            progress_every: None,
            stall_after: Duration::from_secs(30),
            progress_tty: false,
        }
    }

    /// Adds the human-readable stderr sink at the configured level.
    pub fn stderr(mut self) -> Self {
        self.stderr = true;
        self
    }

    /// Streams JSONL records to `w` (schema: [`validate_jsonl`]).
    pub fn jsonl_writer(mut self, w: Box<dyn Write + Send>) -> Self {
        self.jsonl = Some(w);
        self
    }

    /// Streams JSONL records to the file at `path`.
    pub fn jsonl_path(self, path: impl AsRef<Path>) -> std::io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(self.jsonl_writer(Box::new(std::io::BufWriter::new(f))))
    }

    /// Streams Chrome `trace_event` JSON to `w` (load in Perfetto).
    pub fn chrome_writer(mut self, w: Box<dyn Write + Send>) -> Self {
        self.chrome = Some(w);
        self
    }

    /// Streams Chrome `trace_event` JSON to the file at `path`.
    pub fn chrome_path(self, path: impl AsRef<Path>) -> std::io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(self.chrome_writer(Box::new(std::io::BufWriter::new(f))))
    }

    /// Writes the aggregated metrics report (JSON) to `path` on
    /// [`flush`] / [`shutdown`].
    pub fn metrics_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.metrics_out = Some(path.into());
        self
    }

    /// Starts the progress watchdog: a background thread that every
    /// `interval` emits a `progress` record to the active sinks (and
    /// flushes them, so live consumers see it) and checks the global
    /// [`advance`] counter for stalls.
    pub fn progress_every(mut self, interval: Duration) -> Self {
        self.progress_every = Some(interval);
        self
    }

    /// How long the [`advance`] counter may sit still before the
    /// watchdog flags the run as stalled (default 30 s). Stalls are
    /// reported on the `progress` record (`stalled`/`stall_ms` fields)
    /// and escalated once per episode as a `progress.stall` warning.
    pub fn stall_after(mut self, window: Duration) -> Self {
        self.stall_after = window;
        self
    }

    /// Renders a live single-line progress display on stderr
    /// (carriage-return overwrite) from the watchdog thread. Meant for
    /// interactive runs; leave off when stderr is piped.
    pub fn progress_tty(mut self, on: bool) -> Self {
        self.progress_tty = on;
        self
    }
}

/// Installs the global collector described by `config`, replacing any
/// previous one (whose sinks are flushed and dropped). Metrics are
/// always aggregated while a collector is installed.
pub fn install(config: TraceConfig) {
    epoch(); // pin the timestamp origin before the first record
    stop_watchdog();
    let mut sinks: Vec<SinkEntry> = Vec::new();
    if config.stderr && config.level > Level::Off {
        sinks.push(SinkEntry {
            level: config.level,
            sink: Box::new(StderrSink),
        });
    }
    if let Some(w) = config.jsonl {
        sinks.push(SinkEntry {
            level: Level::Trace,
            sink: Box::new(JsonlSink::new(w)),
        });
    }
    if let Some(w) = config.chrome {
        sinks.push(SinkEntry {
            level: Level::Trace,
            sink: Box::new(ChromeSink::new(w)),
        });
    }
    // metrics aggregation and the watchdog both need every record to
    // pass the global guard, whatever the sink levels filter down to
    let force_full = config.metrics_out.is_some() || config.progress_every.is_some();
    let max = sinks
        .iter()
        .map(|s| s.level)
        .max()
        .unwrap_or(Level::Off)
        .max(if force_full { Level::Trace } else { Level::Off });
    let collector = Collector {
        sinks,
        metrics: metrics::Registry::default(),
        metrics_out: config.metrics_out,
    };
    let mut guard = COLLECTOR.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(mut old) = guard.replace(collector) {
        for s in &mut old.sinks {
            s.sink.flush();
        }
    }
    MAX_LEVEL.store(max as u8, Ordering::Relaxed);
    drop(guard);
    if let Some(interval) = config.progress_every {
        start_watchdog(interval, config.stall_after, config.progress_tty);
    }
}

/// `true` while a collector is installed.
pub fn is_installed() -> bool {
    MAX_LEVEL.load(Ordering::Relaxed) != 0
}

/// Flushes every sink and (if configured) writes the metrics report to
/// the `metrics_path` file. The collector stays installed.
pub fn flush() {
    let mut guard = COLLECTOR.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(c) = guard.as_mut() {
        for s in &mut c.sinks {
            s.sink.flush();
        }
        if let Some(path) = &c.metrics_out {
            let report = c.metrics.snapshot();
            let _ = std::fs::write(path, report.to_json());
        }
    }
}

/// Flushes, uninstalls the collector, and returns the final metrics
/// report (`None` when nothing was installed).
pub fn shutdown() -> Option<MetricsReport> {
    stop_watchdog();
    let taken = {
        let mut guard = COLLECTOR.lock().unwrap_or_else(|e| e.into_inner());
        MAX_LEVEL.store(0, Ordering::Relaxed);
        guard.take()
    };
    let mut c = taken?;
    for s in &mut c.sinks {
        s.sink.flush();
    }
    let report = c.metrics.snapshot();
    if let Some(path) = &c.metrics_out {
        let _ = std::fs::write(path, report.to_json());
    }
    Some(report)
}

/// A snapshot of the aggregated metrics so far (`None` when no
/// collector is installed).
pub fn metrics() -> Option<MetricsReport> {
    let guard = COLLECTOR.lock().unwrap_or_else(|e| e.into_inner());
    guard.as_ref().map(|c| c.metrics.snapshot())
}

fn dispatch(level: Level, name: &str, kind: Kind, fields: &[(&str, Value)]) {
    let ts_us = now_us();
    let tid = TID.with(|t| *t);
    THREAD_NAME.with(|n| {
        let n = n.borrow();
        let record = Record {
            ts_us,
            tid,
            thread_name: n.as_deref(),
            level,
            name,
            kind,
            fields,
        };
        let mut guard = COLLECTOR.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(c) = guard.as_mut() {
            c.metrics.record(&record);
            for s in &mut c.sinks {
                if level <= s.level {
                    s.sink.record(&record);
                }
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Emission API
// ---------------------------------------------------------------------------

/// Emits a point-in-time event. Callers should guard with [`enabled`]
/// (or use [`event!`], which does) so field construction is skipped
/// when tracing is off.
pub fn event(level: Level, name: &str, fields: &[(&str, Value)]) {
    if enabled(level) {
        dispatch(level, name, Kind::Event, fields);
    }
}

/// Adds `delta` to the counter `name` (metrics total + Chrome track).
pub fn counter(level: Level, name: &str, delta: i64) {
    if enabled(level) {
        dispatch(level, name, Kind::Counter { delta }, &[]);
    }
}

/// Records one sample into the log-bucketed histogram `name`.
pub fn hist(level: Level, name: &str, value: u64) {
    hist_n(level, name, value, 1);
}

/// Records `count` samples of `value` into the histogram `name` —
/// the batch form hot paths use to flush pre-bucketed tallies (e.g.
/// per-restart LBD counts) in one record.
pub fn hist_n(level: Level, name: &str, value: u64, count: u64) {
    if count > 0 && enabled(level) {
        dispatch(level, name, Kind::Hist { value, count }, &[]);
    }
}

/// Sets the gauge `name` to the absolute `value` (last write wins;
/// the metrics report keeps the min/max envelope, the Chrome sink a
/// plotted track).
pub fn gauge(level: Level, name: &str, value: i64) {
    if enabled(level) {
        dispatch(level, name, Kind::Gauge { value }, &[]);
    }
}

// ---------------------------------------------------------------------------
// Progress watchdog
// ---------------------------------------------------------------------------

/// Global forward-progress counter read by the watchdog. Ticked by
/// long-running loops at natural boundaries: the CDCL solver at every
/// restart, CEGIS at every iteration.
static ADVANCE: AtomicU64 = AtomicU64::new(0);

/// Ticks the forward-progress counter (no-op while tracing is off —
/// the disabled path is the same single relaxed load as [`enabled`]).
#[inline]
pub fn advance() {
    if MAX_LEVEL.load(Ordering::Relaxed) != 0 {
        ADVANCE.fetch_add(1, Ordering::Relaxed);
    }
}

/// The current value of the forward-progress counter.
pub fn advance_count() -> u64 {
    ADVANCE.load(Ordering::Relaxed)
}

struct WatchdogHandle {
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<()>,
}

static WATCHDOG: Mutex<Option<WatchdogHandle>> = Mutex::new(None);

fn stop_watchdog() {
    let taken = {
        let mut guard = WATCHDOG.lock().unwrap_or_else(|e| e.into_inner());
        guard.take()
    };
    if let Some(h) = taken {
        h.stop.store(true, Ordering::Release);
        let _ = h.thread.join();
    }
}

fn start_watchdog(interval: Duration, stall_after: Duration, tty: bool) {
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("trace-watchdog".into())
        .spawn(move || watchdog_loop(interval, stall_after, tty, &stop2))
        .expect("spawn trace watchdog");
    let mut guard = WATCHDOG.lock().unwrap_or_else(|e| e.into_inner());
    *guard = Some(WatchdogHandle { stop, thread });
}

fn watchdog_loop(interval: Duration, stall_after: Duration, tty: bool, stop: &AtomicBool) {
    set_thread_name("trace-watchdog");
    let mut detector = StallDetector::new(stall_after.as_millis().max(1) as u64);
    let mut last_advance = advance_count();
    let mut was_stalled = false;
    'ticks: loop {
        // sleep in short slices so shutdown never waits a full interval
        let deadline = Instant::now() + interval;
        while Instant::now() < deadline {
            if stop.load(Ordering::Acquire) {
                break 'ticks;
            }
            std::thread::sleep(Duration::from_millis(5).min(interval));
        }
        let adv = advance_count();
        let delta = adv.wrapping_sub(last_advance);
        last_advance = adv;
        let now_ms = now_us() / 1000;
        let stall = detector.observe(adv, now_ms);
        let stalled = stall.is_some();
        let fields = [
            ("elapsed_ms", Value::U64(now_ms)),
            ("advance", Value::U64(adv)),
            ("delta", Value::U64(delta)),
            ("stalled", Value::Bool(stalled)),
            ("stall_ms", Value::U64(stall.unwrap_or(0))),
        ];
        dispatch(Level::Info, "progress", Kind::Progress, &fields);
        if stalled && !was_stalled {
            event(
                Level::Warn,
                "progress.stall",
                &[
                    ("idle_ms", Value::U64(stall.unwrap_or(0))),
                    ("advance", Value::U64(adv)),
                ],
            );
        }
        was_stalled = stalled;
        if tty {
            render_tty_line(now_ms, adv, delta, stall);
        }
        // push the heartbeat through to live consumers (tail -f etc.)
        flush();
    }
    // final heartbeat at shutdown: runs shorter than one interval
    // still record their end state (elapsed, total advance)
    let adv = advance_count();
    let now_ms = now_us() / 1000;
    let fields = [
        ("elapsed_ms", Value::U64(now_ms)),
        ("advance", Value::U64(adv)),
        ("delta", Value::U64(adv.wrapping_sub(last_advance))),
        ("stalled", Value::Bool(false)),
        ("stall_ms", Value::U64(0)),
    ];
    dispatch(Level::Info, "progress", Kind::Progress, &fields);
    if tty {
        let _ = std::io::stderr().lock().write_all(b"\r\x1b[K");
    }
}

/// Overwrites a single stderr status line (`\r` + clear-to-EOL).
fn render_tty_line(now_ms: u64, adv: u64, delta: u64, stall: Option<u64>) {
    let mut line = String::with_capacity(160);
    use std::fmt::Write as _;
    let _ = write!(
        line,
        "\r\x1b[K[fec {:>7.1}s] advance {adv} (+{delta})",
        now_ms as f64 / 1e3
    );
    if let Some(report) = metrics() {
        for (key, label) in [
            ("cegis.iterations", "iters"),
            ("cegis.counterexamples", "cex"),
            ("sat.conflicts", "conflicts"),
        ] {
            if let Some(v) = report.counters.get(key) {
                let _ = write!(line, "  {label} {v}");
            }
        }
        if let Some(g) = report.gauges.get("sat.learnt_db") {
            let _ = write!(line, "  learnt {}", g.last);
        }
    }
    if let Some(idle) = stall {
        let _ = write!(line, "  STALLED {:.1}s", idle as f64 / 1e3);
    }
    let _ = std::io::stderr().lock().write_all(line.as_bytes());
}

/// An RAII span: created by [`Span::enter`], emits `SpanEnd` with the
/// measured duration on drop. When tracing is disabled at entry the
/// span is a no-op shell (no allocation, no clock read).
#[must_use = "a span measures the scope it is alive in"]
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    name: String,
    level: Level,
    start: Instant,
}

impl Span {
    /// Opens a span; emits `SpanBegin` with `fields` if enabled.
    pub fn enter(level: Level, name: &str, fields: &[(&str, Value)]) -> Span {
        if !enabled(level) {
            return Span { inner: None };
        }
        dispatch(level, name, Kind::SpanBegin, fields);
        Span {
            inner: Some(SpanInner {
                name: name.to_string(),
                level,
                start: Instant::now(),
            }),
        }
    }

    /// A disabled span (useful to thread through APIs unconditionally).
    pub fn none() -> Span {
        Span { inner: None }
    }

    /// `true` when this span is live (tracing was enabled at entry).
    pub fn is_live(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(s) = self.inner.take() {
            let dur_us = s.start.elapsed().as_micros() as u64;
            dispatch(s.level, &s.name, Kind::SpanEnd { dur_us }, &[]);
        }
    }
}

/// Emits an event, building fields only when the level is enabled:
/// `event!(Level::Info, "name", "key" => value, ...)`.
#[macro_export]
macro_rules! event {
    ($level:expr, $name:expr $(, $k:literal => $v:expr)* $(,)?) => {
        if $crate::enabled($level) {
            $crate::event($level, $name, &[$(($k, $crate::Value::from($v))),*]);
        }
    };
}

/// Increments a counter: `counter!(Level::Debug, "name", delta)`.
#[macro_export]
macro_rules! counter {
    ($level:expr, $name:expr, $delta:expr) => {
        $crate::counter($level, $name, ($delta) as i64)
    };
}

/// Records a histogram sample: `hist!(Level::Debug, "name", value)`,
/// or a pre-counted batch: `hist!(Level::Debug, "name", value, n)`.
#[macro_export]
macro_rules! hist {
    ($level:expr, $name:expr, $value:expr) => {
        $crate::hist($level, $name, ($value) as u64)
    };
    ($level:expr, $name:expr, $value:expr, $count:expr) => {
        $crate::hist_n($level, $name, ($value) as u64, ($count) as u64)
    };
}

/// Sets a gauge to an absolute value: `gauge!(Level::Debug, "name", v)`.
#[macro_export]
macro_rules! gauge {
    ($level:expr, $name:expr, $value:expr) => {
        $crate::gauge($level, $name, ($value) as i64)
    };
}

/// Opens a span bound to the enclosing scope:
/// `let _s = span!(Level::Info, "name", "key" => value);`
#[macro_export]
macro_rules! span {
    ($level:expr, $name:expr $(, $k:literal => $v:expr)* $(,)?) => {
        if $crate::enabled($level) {
            $crate::Span::enter($level, $name, &[$(($k, $crate::Value::from($v))),*])
        } else {
            $crate::Span::none()
        }
    };
}

// ---------------------------------------------------------------------------
// Test support
// ---------------------------------------------------------------------------

/// Helpers for tests and benches that need to capture sink output.
pub mod test_support {
    use std::io::Write;
    use std::sync::{Arc, Mutex};

    /// A cloneable in-memory `Write` target.
    #[derive(Clone, Default)]
    pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        /// Takes the accumulated bytes as a UTF-8 string.
        pub fn take_string(&self) -> String {
            let mut b = self.0.lock().unwrap_or_else(|e| e.into_inner());
            String::from_utf8_lossy(&std::mem::take(&mut *b)).into_owned()
        }

        /// Bytes written so far.
        pub fn len(&self) -> usize {
            self.0.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// `true` when nothing was written yet.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing_and_order() {
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse("DEBUG"), Some(Level::Debug));
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("bogus"), None);
        assert!(Level::Error < Level::Trace);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn disabled_by_default() {
        // the global default must be fully off: enabled() is the only
        // thing hot paths consult
        assert!(!enabled(Level::Error) || is_installed());
    }

    #[test]
    fn enabled_at_caps_per_run() {
        // regardless of global state, a cap below the record level wins
        assert!(!enabled_at(Level::Info, Level::Debug));
        assert!(!enabled_at(Level::Off, Level::Error));
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3usize), Value::U64(3));
        assert_eq!(Value::from(-2i64), Value::I64(-2));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
    }

    #[test]
    fn span_none_is_inert() {
        let s = Span::none();
        assert!(!s.is_live());
        drop(s); // must not emit or panic
    }
}
