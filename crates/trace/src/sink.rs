//! Output sinks: human-readable stderr, JSONL event stream, and Chrome
//! `trace_event` JSON for Perfetto / `about:tracing`.

use crate::json::{escape_into, parse_json, value_into, Json};
use crate::{Kind, Record};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write;

pub(crate) trait Sink {
    fn record(&mut self, r: &Record<'_>);
    fn flush(&mut self);
}

// ---------------------------------------------------------------------------
// stderr
// ---------------------------------------------------------------------------

/// `[   0.001234s INFO  cegis.candidate] iter=3 gens=1`
pub(crate) struct StderrSink;

impl Sink for StderrSink {
    fn record(&mut self, r: &Record<'_>) {
        // span-begin lines duplicate span-end information; keep stderr
        // readable by reporting spans once, on close, with duration
        if matches!(r.kind, Kind::SpanBegin) {
            return;
        }
        let mut line = String::with_capacity(96);
        let _ = write!(
            line,
            "[{:>11.6}s {:<5} {}]",
            r.ts_us as f64 / 1e6,
            r.level.name().to_ascii_uppercase(),
            r.name
        );
        match r.kind {
            Kind::SpanEnd { dur_us } => {
                let _ = write!(line, " dur={:.3}ms", dur_us as f64 / 1e3);
            }
            Kind::Counter { delta } => {
                let _ = write!(line, " +{delta}");
            }
            Kind::Hist { value, count } => {
                let _ = write!(line, " sample={value} x{count}");
            }
            Kind::Gauge { value } => {
                let _ = write!(line, " ={value}");
            }
            Kind::Event | Kind::SpanBegin | Kind::Progress => {}
        }
        for (k, v) in r.fields {
            let mut vs = String::new();
            value_into(&mut vs, v);
            let _ = write!(line, " {k}={vs}");
        }
        line.push('\n');
        // one atomic write_all of the whole preformatted line: worker
        // threads (portfolio, watchdog) must never shear each other's
        // output mid-line
        let _ = std::io::stderr().lock().write_all(line.as_bytes());
    }

    fn flush(&mut self) {
        let _ = std::io::stderr().flush();
    }
}

// ---------------------------------------------------------------------------
// JSONL
// ---------------------------------------------------------------------------

/// One JSON object per line; see [`validate_jsonl`] for the schema.
pub(crate) struct JsonlSink {
    w: Box<dyn Write + Send>,
}

impl JsonlSink {
    pub(crate) fn new(w: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink { w }
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, r: &Record<'_>) {
        let mut line = String::with_capacity(128);
        let kind = match r.kind {
            Kind::Event => "event",
            Kind::SpanBegin => "begin",
            Kind::SpanEnd { .. } => "end",
            Kind::Counter { .. } => "counter",
            Kind::Hist { .. } => "hist",
            Kind::Gauge { .. } => "gauge",
            Kind::Progress => "progress",
        };
        let _ = write!(
            line,
            "{{\"ts_us\": {}, \"tid\": {}, \"level\": \"{}\", \"kind\": \"{kind}\", \"name\": ",
            r.ts_us,
            r.tid,
            r.level.name()
        );
        escape_into(&mut line, r.name);
        if let Some(t) = r.thread_name {
            line.push_str(", \"thread\": ");
            escape_into(&mut line, t);
        }
        match r.kind {
            Kind::SpanEnd { dur_us } => {
                let _ = write!(line, ", \"dur_us\": {dur_us}");
            }
            Kind::Counter { delta } => {
                let _ = write!(line, ", \"delta\": {delta}");
            }
            Kind::Hist { value, count } => {
                let _ = write!(line, ", \"value\": {value}, \"count\": {count}");
            }
            Kind::Gauge { value } => {
                let _ = write!(line, ", \"value\": {value}");
            }
            _ => {}
        }
        if !r.fields.is_empty() {
            line.push_str(", \"fields\": {");
            for (i, (k, v)) in r.fields.iter().enumerate() {
                if i > 0 {
                    line.push_str(", ");
                }
                escape_into(&mut line, k);
                line.push_str(": ");
                value_into(&mut line, v);
            }
            line.push('}');
        }
        line.push_str("}\n");
        let _ = self.w.write_all(line.as_bytes());
    }

    fn flush(&mut self) {
        let _ = self.w.flush();
    }
}

/// Validates a JSONL event stream against the fec-trace schema and
/// returns the number of records.
///
/// Schema (per line, one JSON object):
///
/// - `ts_us`: number — microseconds since collector install
/// - `tid`: number — dense thread id
/// - `level`: string in `error|warn|info|debug|trace`
/// - `kind`: string in `event|begin|end|counter|hist|gauge|progress`
/// - `name`: non-empty string
/// - `dur_us`: number, required iff `kind == "end"`
/// - `delta`: number, required iff `kind == "counter"`
/// - `value`: number, required iff `kind` is `hist` or `gauge`
/// - `count`: number, required iff `kind == "hist"`
/// - `thread`: optional string
/// - `fields`: optional object of scalar values
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let mut count = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fail = |m: &str| Err(format!("line {}: {m}", lineno + 1));
        let v = match parse_json(line) {
            Ok(v) => v,
            Err(e) => return fail(&e.to_string()),
        };
        let Json::Obj(_) = v else {
            return fail("record is not an object");
        };
        if v.get("ts_us").and_then(Json::as_num).is_none() {
            return fail("missing numeric ts_us");
        }
        if v.get("tid").and_then(Json::as_num).is_none() {
            return fail("missing numeric tid");
        }
        match v.get("level").and_then(Json::as_str) {
            Some("error" | "warn" | "info" | "debug" | "trace") => {}
            _ => return fail("missing or unknown level"),
        }
        let kind = v.get("kind").and_then(Json::as_str);
        match kind {
            Some("event" | "begin" | "end" | "counter" | "hist" | "gauge" | "progress") => {}
            _ => return fail("missing or unknown kind"),
        }
        match v.get("name").and_then(Json::as_str) {
            Some(n) if !n.is_empty() => {}
            _ => return fail("missing or empty name"),
        }
        if kind == Some("end") && v.get("dur_us").and_then(Json::as_num).is_none() {
            return fail("span end without numeric dur_us");
        }
        if kind == Some("counter") && v.get("delta").and_then(Json::as_num).is_none() {
            return fail("counter without numeric delta");
        }
        if matches!(kind, Some("hist" | "gauge")) && v.get("value").and_then(Json::as_num).is_none()
        {
            return fail("hist/gauge without numeric value");
        }
        if kind == Some("hist") && v.get("count").and_then(Json::as_num).is_none() {
            return fail("hist without numeric count");
        }
        if let Some(f) = v.get("fields") {
            let Json::Obj(m) = f else {
                return fail("fields is not an object");
            };
            if m.values().any(|x| matches!(x, Json::Arr(_) | Json::Obj(_))) {
                return fail("field values must be scalars");
            }
        }
        count += 1;
    }
    Ok(count)
}

// ---------------------------------------------------------------------------
// Chrome trace_event
// ---------------------------------------------------------------------------

/// Chrome `trace_event` JSON-array format. The array is intentionally
/// left unterminated (the format's streaming mode, accepted by
/// Perfetto and `about:tracing`), so a crashed run still yields a
/// loadable trace.
pub(crate) struct ChromeSink {
    w: Box<dyn Write + Send>,
    first: bool,
    /// Threads already announced with a `thread_name` metadata record.
    named: std::collections::BTreeSet<u64>,
    /// Cumulative counter values (Chrome plots absolute track values).
    counters: BTreeMap<String, i64>,
}

impl ChromeSink {
    pub(crate) fn new(w: Box<dyn Write + Send>) -> ChromeSink {
        ChromeSink {
            w,
            first: true,
            named: std::collections::BTreeSet::new(),
            counters: BTreeMap::new(),
        }
    }

    fn emit(&mut self, obj: &str) {
        let sep = if self.first { "[\n" } else { ",\n" };
        self.first = false;
        let _ = self.w.write_all(sep.as_bytes());
        let _ = self.w.write_all(obj.as_bytes());
    }
}

impl Sink for ChromeSink {
    fn record(&mut self, r: &Record<'_>) {
        if self.named.insert(r.tid) {
            let name = r
                .thread_name
                .map(str::to_string)
                .unwrap_or_else(|| format!("thread-{}", r.tid));
            let mut meta = String::new();
            let _ = write!(
                meta,
                "{{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, \"tid\": {}, \"args\": {{\"name\": ",
                r.tid
            );
            escape_into(&mut meta, &name);
            meta.push_str("}}");
            self.emit(&meta);
        }
        let mut obj = String::with_capacity(128);
        let common = |obj: &mut String, name: &str, ph: char, ts: u64, tid: u64| {
            let _ = write!(obj, "{{\"ph\": \"{ph}\", \"name\": ");
            escape_into(obj, name);
            let _ = write!(
                obj,
                ", \"cat\": \"fec\", \"ts\": {ts}, \"pid\": 1, \"tid\": {tid}"
            );
        };
        let args_fields = |obj: &mut String, fields: &[(&str, crate::Value)]| {
            obj.push_str(", \"args\": {");
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    obj.push_str(", ");
                }
                escape_into(obj, k);
                obj.push_str(": ");
                value_into(obj, v);
            }
            obj.push('}');
        };
        match r.kind {
            Kind::SpanBegin => {
                common(&mut obj, r.name, 'B', r.ts_us, r.tid);
                args_fields(&mut obj, r.fields);
                obj.push('}');
            }
            Kind::SpanEnd { .. } => {
                common(&mut obj, r.name, 'E', r.ts_us, r.tid);
                obj.push('}');
            }
            Kind::Event | Kind::Progress => {
                common(&mut obj, r.name, 'i', r.ts_us, r.tid);
                obj.push_str(", \"s\": \"t\"");
                args_fields(&mut obj, r.fields);
                obj.push('}');
            }
            Kind::Hist { .. } => {
                // distributions are aggregated by the metrics report;
                // per-sample tracks would only bloat the trace
                return;
            }
            Kind::Gauge { value } => {
                // gauges plot naturally as absolute counter tracks
                let _ = write!(obj, "{{\"ph\": \"C\", \"name\": ");
                escape_into(&mut obj, r.name);
                let _ = write!(
                    obj,
                    ", \"cat\": \"fec\", \"ts\": {}, \"pid\": 1, \"args\": {{\"value\": {value}}}}}",
                    r.ts_us
                );
            }
            Kind::Counter { delta } => {
                let total = self.counters.entry(r.name.to_string()).or_insert(0);
                *total += delta;
                let total = *total;
                // counters live on pid-level tracks, not thread rows
                let _ = write!(obj, "{{\"ph\": \"C\", \"name\": ");
                escape_into(&mut obj, r.name);
                let _ = write!(
                    obj,
                    ", \"cat\": \"fec\", \"ts\": {}, \"pid\": 1, \"args\": {{\"value\": {total}}}}}",
                    r.ts_us
                );
            }
        }
        self.emit(&obj);
    }

    fn flush(&mut self) {
        let _ = self.w.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Level, Value};

    fn rec<'a>(name: &'a str, kind: Kind, fields: &'a [(&'a str, Value)]) -> Record<'a> {
        Record {
            ts_us: 42,
            tid: 1,
            thread_name: Some("main"),
            level: Level::Info,
            name,
            kind,
            fields,
        }
    }

    #[test]
    fn jsonl_lines_validate() {
        let buf = crate::test_support::SharedBuf::default();
        let mut sink = JsonlSink::new(Box::new(buf.clone()));
        let fields = [("k", Value::U64(7)), ("s", Value::Str("a\"b".into()))];
        sink.record(&rec("x.y", Kind::Event, &fields));
        sink.record(&rec("x.y", Kind::SpanBegin, &[]));
        sink.record(&rec("x.y", Kind::SpanEnd { dur_us: 5 }, &[]));
        sink.record(&rec("c", Kind::Counter { delta: -2 }, &[]));
        sink.flush();
        let text = buf.take_string();
        assert_eq!(validate_jsonl(&text), Ok(4), "{text}");
    }

    #[test]
    fn jsonl_new_kinds_validate() {
        let buf = crate::test_support::SharedBuf::default();
        let mut sink = JsonlSink::new(Box::new(buf.clone()));
        sink.record(&rec(
            "h.lat",
            Kind::Hist {
                value: 128,
                count: 9,
            },
            &[],
        ));
        sink.record(&rec("g.depth", Kind::Gauge { value: -3 }, &[]));
        let fields = [("stalled", Value::Bool(false)), ("advance", Value::U64(7))];
        sink.record(&rec("progress", Kind::Progress, &fields));
        sink.flush();
        let text = buf.take_string();
        assert_eq!(validate_jsonl(&text), Ok(3), "{text}");
        assert!(text.contains("\"kind\": \"hist\""));
        assert!(text.contains("\"value\": 128, \"count\": 9"));
        assert!(text.contains("\"kind\": \"gauge\""));
        assert!(text.contains("\"kind\": \"progress\""));
    }

    #[test]
    fn validate_rejects_bad_records() {
        assert!(validate_jsonl("{\"ts_us\": 1}").is_err());
        assert!(validate_jsonl("not json").is_err());
        // span end without dur_us
        let bad = r#"{"ts_us": 1, "tid": 1, "level": "info", "kind": "end", "name": "x"}"#;
        assert!(validate_jsonl(bad).is_err());
        // unknown level
        let bad = r#"{"ts_us": 1, "tid": 1, "level": "loud", "kind": "event", "name": "x"}"#;
        assert!(validate_jsonl(bad).is_err());
        // hist without count / gauge without value
        let bad =
            r#"{"ts_us": 1, "tid": 1, "level": "debug", "kind": "hist", "name": "x", "value": 2}"#;
        assert!(validate_jsonl(bad).is_err());
        let bad = r#"{"ts_us": 1, "tid": 1, "level": "debug", "kind": "gauge", "name": "x"}"#;
        assert!(validate_jsonl(bad).is_err());
        assert_eq!(validate_jsonl("\n\n"), Ok(0));
    }

    #[test]
    fn chrome_stream_is_loadable_prefix() {
        let buf = crate::test_support::SharedBuf::default();
        let mut sink = ChromeSink::new(Box::new(buf.clone()));
        let fields = [("n", Value::U64(3))];
        sink.record(&rec("span", Kind::SpanBegin, &fields));
        sink.record(&rec("span", Kind::SpanEnd { dur_us: 10 }, &[]));
        sink.record(&rec("ctr", Kind::Counter { delta: 4 }, &[]));
        sink.record(&rec("ctr", Kind::Counter { delta: 3 }, &[]));
        sink.flush();
        let text = buf.take_string();
        assert!(text.starts_with("[\n"), "{text}");
        // close the streaming array and it must parse as JSON
        let closed = format!("{text}\n]");
        let v = parse_json(&closed).expect("chrome trace parses");
        let Json::Arr(events) = v else { panic!() };
        // metadata + B + E + 2×C
        assert_eq!(events.len(), 5);
        assert_eq!(
            events[0].get("ph").and_then(Json::as_str),
            Some("M"),
            "first record announces the thread name"
        );
        // the second counter sample carries the cumulative value
        assert_eq!(
            events[4]
                .get("args")
                .and_then(|a| a.get("value"))
                .and_then(Json::as_num),
            Some(7.0)
        );
    }
}
