//! Instrument value types: log-bucketed histograms, gauge
//! aggregates, and the watchdog's stall detector.
//!
//! [`Histogram`] and [`GaugeAgg`] are plain mergeable values — the
//! global emission API (`hist!`, `gauge!` in the crate root) routes
//! records into per-name instances held by the metrics registry, but
//! the types themselves have no global state and are usable (and
//! property-testable) standalone.

use std::fmt::Write as _;

/// Number of histogram buckets: one per power of two of a `u64`
/// sample, plus a zero bucket (index 0).
pub const HIST_BUCKETS: usize = 65;

/// A log-bucketed histogram of `u64` samples.
///
/// Bucket `0` holds exact zeros; bucket `i >= 1` holds samples whose
/// highest set bit is `i - 1`, i.e. values in `[2^(i-1), 2^i)`. This
/// gives ~1 significant figure of resolution over the full `u64`
/// range in a fixed 65-counter footprint — enough to distinguish a
/// 10 µs conflict gap from a 10 ms one, which is what the solver
/// telemetry needs.
///
/// `merge` is associative and commutative with [`Histogram::new`] as
/// identity (property-tested), so per-thread or per-worker histograms
/// can be folded in any order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// The bucket index a sample lands in.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// The inclusive lower bound of bucket `i`.
pub fn bucket_floor(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

impl Histogram {
    /// An empty histogram (the merge identity).
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` samples of the same value (used to flush
    /// pre-bucketed counts, e.g. the solver's per-restart LBD deltas,
    /// without touching the hot loop).
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(value)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// An estimate of the `q`-quantile (`0.0..=1.0`): the floor of the
    /// bucket containing the `ceil(q * count)`-th sample, clamped to
    /// the observed min/max so exact values survive at the extremes.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_floor(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// A compact single-line rendering: `n=5 mean=12.0 p50=8 p99=64 max=70`.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "n={} mean={:.1} p50={} p99={} max={}",
            self.count,
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.99),
            self.max()
        );
        s
    }
}

/// Aggregate of one gauge name: last-written value plus the envelope.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GaugeAgg {
    /// Most recently set value.
    pub last: i64,
    /// Smallest value ever set.
    pub min: i64,
    /// Largest value ever set.
    pub max: i64,
    /// Number of sets.
    pub sets: u64,
}

impl Default for GaugeAgg {
    fn default() -> GaugeAgg {
        GaugeAgg {
            last: 0,
            min: i64::MAX,
            max: i64::MIN,
            sets: 0,
        }
    }
}

impl GaugeAgg {
    /// Records a gauge write.
    pub fn set(&mut self, value: i64) {
        self.last = value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sets += 1;
    }
}

/// Stall detection for the progress watchdog, factored out of the
/// thread so it can be unit-tested against a mock clock.
///
/// The watchdog feeds it `(advance, now_ms)` on every tick, where
/// `advance` is the global advance counter (ticked by the solver at
/// restart boundaries and by CEGIS per iteration). A query is
/// *stalled* when the counter has not moved for at least `window_ms`.
#[derive(Clone, Copy, Debug)]
pub struct StallDetector {
    window_ms: u64,
    last_advance: u64,
    last_change_ms: u64,
    primed: bool,
}

impl StallDetector {
    /// A detector that flags after `window_ms` without advance.
    pub fn new(window_ms: u64) -> StallDetector {
        StallDetector {
            window_ms,
            last_advance: 0,
            last_change_ms: 0,
            primed: false,
        }
    }

    /// Observes the advance counter at `now_ms`; returns `Some(ms)`
    /// with the time since the last advance when the stall window has
    /// elapsed, `None` while progress is healthy.
    pub fn observe(&mut self, advance: u64, now_ms: u64) -> Option<u64> {
        if !self.primed || advance != self.last_advance {
            self.primed = true;
            self.last_advance = advance;
            self.last_change_ms = now_ms;
            return None;
        }
        let idle = now_ms.saturating_sub(self.last_change_ms);
        if idle >= self.window_ms {
            Some(idle)
        } else {
            None
        }
    }

    /// Milliseconds since the last observed advance.
    pub fn idle_ms(&self, now_ms: u64) -> u64 {
        if self.primed {
            now_ms.saturating_sub(self.last_change_ms)
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_floor(1), 1);
        assert_eq!(bucket_floor(2), 2);
        assert_eq!(bucket_floor(3), 4);
        // every value falls in [floor(i), 2*floor(i)) for i >= 1
        for v in [1u64, 5, 63, 64, 1000, u64::MAX / 2] {
            let i = bucket_index(v);
            assert!(bucket_floor(i) <= v);
            if i < 64 {
                assert!(v < bucket_floor(i + 1).max(1));
            }
        }
    }

    #[test]
    fn histogram_basic_stats() {
        let mut h = Histogram::new();
        assert_eq!((h.count(), h.min(), h.max()), (0, 0, 0));
        for v in [3u64, 9, 9, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1021);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 1000);
        assert!(h.quantile(0.5) >= 2 && h.quantile(0.5) <= 9);
        assert!(h.quantile(1.0) >= 512);
        assert!(h.render().contains("n=4"));
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(17, 5);
        for _ in 0..5 {
            b.record(17);
        }
        assert_eq!(a, b);
        a.record_n(9, 0); // zero count is a no-op
        assert_eq!(a, b);
    }

    #[test]
    fn stall_detector_flags_and_recovers() {
        let mut d = StallDetector::new(100);
        assert_eq!(d.observe(0, 0), None); // priming observation
        assert_eq!(d.observe(0, 50), None); // within window
        assert_eq!(d.observe(0, 100), Some(100)); // window elapsed
        assert_eq!(d.observe(0, 250), Some(250)); // still stalled, idle grows
        assert_eq!(d.observe(1, 260), None); // advance clears it
        assert_eq!(d.idle_ms(300), 40);
        assert_eq!(d.observe(1, 359), None);
        assert_eq!(d.observe(1, 360), Some(100));
    }
}
