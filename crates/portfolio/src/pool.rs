//! Resident warm worker pool: the incremental counterpart of the
//! one-shot [`crate::solve`] engine.
//!
//! A [`Pool`] keeps `jobs` diversified CDCL workers alive across an
//! entire solving *session*. Consecutive queries ship only the clause
//! delta since the previous query (the caller's formula is monotone
//! under the activation-literal discipline — retraction is a unit
//! guard clause, also a delta), so every worker keeps its learned
//! clause database, VSIDS activities, phase saving, and previously
//! imported clauses warm from one query to the next. The SPSC sharing
//! mesh is likewise built once and reused: a clause exported during
//! query `q` may be imported during query `q+1`, which is sound for
//! exactly the same reason the warm learned-clause DB is — all
//! workers' formulas grow monotonically and stay identical.
//!
//! Threading model: the coordinator (the thread driving the [`Pool`])
//! publishes jobs through a [`Gate`] and the resident worker threads
//! park between generations. `load` and `inprocess` are
//! *fire-and-forget* — the coordinator returns as soon as the job is
//! published and overlaps its own work (e.g. the CEGIS synthesizer
//! query) with the workers'; `solve` waits for all acknowledgements
//! and collects per-query reports.
//!
//! Certification: with [`PortfolioConfig::certify`] every worker keeps
//! its `MemoryProofLogger` installed for the pool's lifetime and each
//! `solve` report drains the buffered steps into a per-query *segment*
//! (covering any loads/inprocessing since the previous solve plus this
//! query's derivations). Concatenating worker `i`'s segments in query
//! order reconstructs worker `i`'s complete stand-alone DRAT stream,
//! so a stitching checker upstream (see `fec-smt`) certifies warm
//! answers exactly as it certifies cold ones.
//!
//! In deterministic mode (and for `jobs == 1`) the workers live inline
//! on the calling thread and run in fixed round-robin conflict slices
//! per query — same seed ⇒ bit-identical winners, statistics, and
//! shipped-clause counts across runs, queries, and pool instances.

use crate::engine::{
    build_worker, emit_worker_done, observe_import, report, ring_mesh, MeshEnds, PortfolioStats,
    WorkerReport,
};
use crate::gate::Gate;
use crate::PortfolioConfig;
use fec_sat::{Budget, Lit, MemoryProofLogger, ProofStep, SolveResult, Solver, SolverStats, Var};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// What the coordinator publishes to the resident workers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum JobKind {
    /// Apply the clause delta, no solving. Fire-and-forget.
    Load,
    /// Apply the delta, then race a solve under the assumptions.
    Solve,
    /// Run one on-demand inprocessing pass (`lits` = frozen literals).
    /// Fire-and-forget: overlaps with coordinator-side work.
    Inprocess,
    /// Tear the pool down.
    Quit,
}

struct Job {
    kind: JobKind,
    /// Total variable count after this job's delta.
    num_vars: usize,
    /// Clause delta since the previous job.
    clauses: Vec<Vec<Lit>>,
    /// `Solve`: assumptions; `Inprocess`: frozen literals.
    lits: Vec<Lit>,
    budget: Budget,
    /// The coordinator thread, unparked after every acknowledgement.
    waker: thread::Thread,
}

/// Result of one warm [`Pool::solve`] query.
pub struct PoolOutcome {
    /// The verdict (`Unknown` only if no worker finished in budget).
    pub result: SolveResult,
    /// On `Sat`: the winner's model, indexed by variable.
    pub model: Option<Vec<Option<bool>>>,
    /// On `Unsat` under assumptions: the winner's failed-assumption
    /// subset.
    pub failed_assumptions: Vec<Lit>,
    /// Per-query statistics: `workers` and `total` are *deltas* since
    /// each worker's previous solve report (so they cover this query
    /// plus any loads/inprocessing in between), and `shipped_clauses`
    /// counts only the delta physically transferred — the O(delta)
    /// guarantee the regression tests pin down.
    pub stats: PortfolioStats,
    /// With [`PortfolioConfig::certify`]: one DRAT segment per worker,
    /// containing everything that worker logged since its previous
    /// solve report. Empty `Vec` per worker when not certifying.
    pub proof_segments: Vec<Vec<ProofStep>>,
}

impl PoolOutcome {
    /// The winner's assignment of `v` (`None` when unassigned or when
    /// the result was not `Sat`).
    pub fn value(&self, v: Var) -> Option<bool> {
        self.model.as_ref().and_then(|m| m[v.index()])
    }
}

/// A resident warm portfolio: `jobs` diversified workers that persist
/// across queries, fed per-query clause deltas.
pub struct Pool {
    config: PortfolioConfig,
    inner: PoolInner,
    /// Queries answered so far (drives trace events).
    queries: u64,
}

enum PoolInner {
    /// `jobs == 1` or deterministic mode: workers live on the calling
    /// thread, round-robin conflict slices per query.
    Inline(InlinePool),
    /// Racing mode: resident worker threads coordinated by a [`Gate`].
    Threaded(ThreadedPool),
}

impl Pool {
    /// Builds the pool: workers are constructed (and, in racing mode,
    /// their threads spawned and parked) immediately, with an empty
    /// formula.
    pub fn new(config: &PortfolioConfig) -> Pool {
        let n = config.jobs.max(1);
        let inner = if n == 1 || config.deterministic {
            PoolInner::Inline(InlinePool::new(n, config))
        } else {
            PoolInner::Threaded(ThreadedPool::new(n, config))
        };
        Pool {
            config: *config,
            inner,
            queries: 0,
        }
    }

    /// Number of resident workers.
    pub fn jobs(&self) -> usize {
        match &self.inner {
            PoolInner::Inline(p) => p.workers.len(),
            PoolInner::Threaded(p) => p.gate.workers(),
        }
    }

    /// Ships a clause delta to every worker without solving.
    /// Fire-and-forget in racing mode: returns once published.
    pub fn load(&mut self, num_vars: usize, clauses: Vec<Vec<Lit>>) {
        match &mut self.inner {
            PoolInner::Inline(p) => p.load(num_vars, &clauses),
            PoolInner::Threaded(p) => p.publish(Job {
                kind: JobKind::Load,
                num_vars,
                clauses,
                lits: Vec::new(),
                budget: Budget::unlimited(),
                waker: thread::current(),
            }),
        }
    }

    /// Schedules one on-demand inprocessing pass in every worker, with
    /// `frozen` protected from elimination (assumption variables).
    /// Fire-and-forget in racing mode — it overlaps with whatever the
    /// coordinator does next, and the next `solve` waits for it.
    pub fn inprocess(&mut self, frozen: Vec<Lit>) {
        match &mut self.inner {
            PoolInner::Inline(p) => p.inprocess(&frozen),
            PoolInner::Threaded(p) => p.publish(Job {
                kind: JobKind::Inprocess,
                num_vars: 0,
                clauses: Vec::new(),
                lits: frozen,
                budget: Budget::unlimited(),
                waker: thread::current(),
            }),
        }
    }

    /// Ships the clause delta and races the warm workers on the query.
    pub fn solve(
        &mut self,
        num_vars: usize,
        clauses: Vec<Vec<Lit>>,
        assumptions: Vec<Lit>,
        budget: Budget,
    ) -> PoolOutcome {
        let start = Instant::now();
        let n = self.jobs();
        let shipped = (clauses.len() * n) as u64;
        self.queries += 1;
        let _sp = fec_trace::span!(
            fec_trace::Level::Trace,
            "portfolio.pool.solve",
            "jobs" => n,
            "query" => self.queries,
            "delta_clauses" => clauses.len(),
            "vars" => num_vars,
        );
        let (reports, winner) = match &mut self.inner {
            PoolInner::Inline(p) => p.solve(num_vars, &clauses, &assumptions, budget),
            PoolInner::Threaded(p) => p.solve(Job {
                kind: JobKind::Solve,
                num_vars,
                clauses,
                lits: assumptions,
                budget,
                waker: thread::current(),
            }),
        };
        let out = assemble_pool(reports, winner, shipped, start.elapsed());
        if fec_trace::enabled(fec_trace::Level::Debug) {
            fec_trace::counter!(
                fec_trace::Level::Debug,
                "portfolio.pool.shipped",
                out.stats.shipped_clauses
            );
            fec_trace::event!(
                fec_trace::Level::Debug,
                "portfolio.pool.query",
                "query" => self.queries,
                "result" => match out.result {
                    SolveResult::Sat => "sat",
                    SolveResult::Unsat => "unsat",
                    SolveResult::Unknown => "unknown",
                },
                "winner" => out.stats.winner.map_or(-1i64, |w| w as i64),
                "conflicts" => out.stats.total.conflicts,
                "shipped" => out.stats.shipped_clauses,
                "wall_us" => out.stats.wall.as_micros() as u64,
            );
        }
        out
    }

    /// Whether proof segments are being collected.
    pub fn certifying(&self) -> bool {
        self.config.certify
    }
}

/// Grows the variable space and applies the clause delta.
fn apply_delta(s: &mut Solver, num_vars: usize, clauses: &[Vec<Lit>]) {
    while s.num_vars() < num_vars {
        s.new_var();
    }
    for c in clauses {
        if !s.add_clause(c) {
            break; // formula refuted at level 0; solver answers Unsat from here
        }
    }
}

/// Folds per-query worker reports into the outcome. Unlike the
/// one-shot engine's assembly, the winner is named explicitly (every
/// report may carry a proof segment here, so "has a proof" no longer
/// identifies the winner).
fn assemble_pool(
    reports: Vec<WorkerReport>,
    winner: Option<usize>,
    shipped: u64,
    wall: Duration,
) -> PoolOutcome {
    let mut stats = PortfolioStats {
        winner,
        wall,
        shipped_clauses: shipped,
        ..PortfolioStats::default()
    };
    let mut result = SolveResult::Unknown;
    let mut model = None;
    let mut failed = Vec::new();
    let mut segments = Vec::with_capacity(reports.len());
    for (i, r) in reports.into_iter().enumerate() {
        stats.total.merge(&r.stats);
        stats.workers.push(r.stats);
        segments.push(r.proof.unwrap_or_default());
        if Some(i) == winner {
            result = r.result;
            model = r.model;
            failed = r.failed_assumptions;
        }
    }
    PoolOutcome {
        result,
        model,
        failed_assumptions: failed,
        stats,
        proof_segments: segments,
    }
}

// ---------------------------------------------------------------------
// inline (deterministic / single-worker) pool
// ---------------------------------------------------------------------

struct InlinePool {
    workers: Vec<(Solver, Option<MemoryProofLogger>)>,
    /// Per-worker stats cursor: totals already reported by previous
    /// solve calls, so each report is a per-query delta.
    reported: Vec<SolverStats>,
    slice: u64,
}

impl InlinePool {
    fn new(n: usize, config: &PortfolioConfig) -> InlinePool {
        let sharing = n > 1 && config.share_lbd_max > 0;
        let channels: Vec<MeshEnds> = if sharing {
            ring_mesh(n, config.ring_capacity)
        } else {
            (0..n).map(|_| (Vec::new(), Vec::new())).collect()
        };
        let mut workers = Vec::with_capacity(n);
        for (i, (prods, cons)) in channels.into_iter().enumerate() {
            let (mut s, logger) = build_worker(i, 0, &[], config);
            if sharing {
                s.set_export_hook(
                    Box::new(move |lits, lbd| {
                        for p in &prods {
                            p.push((lits.to_vec(), lbd));
                        }
                    }),
                    config.share_lbd_max,
                );
                s.set_import_hook(Box::new(move || {
                    let mut batch = Vec::new();
                    for c in &cons {
                        batch.extend(c.drain());
                    }
                    observe_import(i, batch.len());
                    batch
                }));
            }
            workers.push((s, logger));
        }
        InlinePool {
            reported: vec![SolverStats::default(); n],
            workers,
            slice: config.det_slice_conflicts.max(1),
        }
    }

    fn load(&mut self, num_vars: usize, clauses: &[Vec<Lit>]) {
        for (s, _) in &mut self.workers {
            apply_delta(s, num_vars, clauses);
        }
    }

    fn inprocess(&mut self, frozen: &[Lit]) {
        for (s, _) in &mut self.workers {
            s.preprocess(frozen);
        }
    }

    fn solve(
        &mut self,
        num_vars: usize,
        clauses: &[Vec<Lit>],
        assumptions: &[Lit],
        budget: Budget,
    ) -> (Vec<WorkerReport>, Option<usize>) {
        let start = Instant::now();
        self.load(num_vars, clauses);
        let n = self.workers.len();
        let mut verdict: Option<(usize, SolveResult)> = None;
        if n == 1 {
            let (s, _) = &mut self.workers[0];
            let r = s.solve_with_budget(assumptions, budget);
            if r != SolveResult::Unknown {
                verdict = Some((0, r));
            }
        } else {
            // the engine's deterministic round-robin, but over warm
            // workers with a fresh per-query conflict ledger
            let mut spent = vec![0u64; n];
            'epochs: loop {
                let mut any_alive = false;
                for (i, (s, _)) in self.workers.iter_mut().enumerate() {
                    let remaining = budget.max_conflicts.saturating_sub(spent[i]);
                    if remaining == 0 {
                        continue;
                    }
                    any_alive = true;
                    let before = s.stats().conflicts;
                    let r = s.solve_with_budget(
                        assumptions,
                        Budget {
                            max_conflicts: remaining.min(self.slice),
                            timeout: None,
                        },
                    );
                    spent[i] += s.stats().conflicts - before;
                    if r != SolveResult::Unknown {
                        verdict = Some((i, r));
                        break 'epochs;
                    }
                }
                if !any_alive {
                    break;
                }
                if let Some(t) = budget.timeout {
                    if start.elapsed() >= t {
                        break;
                    }
                }
            }
        }
        let reports = self
            .workers
            .iter()
            .enumerate()
            .map(|(i, (s, logger))| {
                let (result, won) = match verdict {
                    Some((w, r)) if w == i => (r, true),
                    _ => (SolveResult::Unknown, false),
                };
                let mut rep = report(s, result, num_vars, None, won);
                rep.stats = s.stats().delta_since(&self.reported[i]);
                rep.proof = logger.as_ref().map(|l| l.take_steps());
                rep
            })
            .collect();
        for (i, (s, _)) in self.workers.iter().enumerate() {
            self.reported[i] = s.stats();
        }
        (reports, verdict.map(|(w, _)| w))
    }
}

// ---------------------------------------------------------------------
// threaded (racing) pool
// ---------------------------------------------------------------------

struct ThreadedPool {
    gate: Arc<Gate<Job, WorkerReport>>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl ThreadedPool {
    fn new(n: usize, config: &PortfolioConfig) -> ThreadedPool {
        let gate = Arc::new(Gate::new(n));
        let sharing = config.share_lbd_max > 0;
        let channels: Vec<MeshEnds> = if sharing {
            ring_mesh(n, config.ring_capacity)
        } else {
            (0..n).map(|_| (Vec::new(), Vec::new())).collect()
        };
        let handles = channels
            .into_iter()
            .enumerate()
            .map(|(i, ends)| {
                let gate = Arc::clone(&gate);
                let config = *config;
                thread::spawn(move || worker_main(i, &gate, &config, ends))
            })
            .collect();
        ThreadedPool { gate, handles }
    }

    /// Blocks until the previous generation (if any) is acknowledged,
    /// then publishes `job` and wakes every worker. Returns without
    /// waiting for the new generation — callers that need the reports
    /// call [`ThreadedPool::wait_idle`] themselves.
    fn publish(&self, job: Job) {
        self.wait_idle();
        self.gate.publish(job);
        for h in &self.handles {
            h.thread().unpark();
        }
    }

    fn wait_idle(&self) {
        // workers unpark us via the job's waker after each ack; the
        // timeout is insurance against a stale waker (the Pool moved
        // threads between calls)
        while !self.gate.idle() {
            thread::park_timeout(Duration::from_millis(1));
        }
    }

    fn solve(&mut self, job: Job) -> (Vec<WorkerReport>, Option<usize>) {
        self.publish(job);
        self.wait_idle();
        let reports = self
            .gate
            .take_reports()
            .into_iter()
            .map(|r| r.expect("every worker acked the solve generation"))
            .collect();
        (reports, self.gate.winner())
    }
}

impl Drop for ThreadedPool {
    fn drop(&mut self) {
        self.publish(Job {
            kind: JobKind::Quit,
            num_vars: 0,
            clauses: Vec::new(),
            lits: Vec::new(),
            budget: Budget::unlimited(),
            waker: thread::current(),
        });
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Blank acknowledgement for fire-and-forget generations; the
/// coordinator never reads these (the next solve report overwrites the
/// slot), so they carry no stats and no proof segment — the work they
/// represent rides into the next solve's delta.
fn blank_report() -> WorkerReport {
    WorkerReport {
        result: SolveResult::Unknown,
        stats: SolverStats::default(),
        model: None,
        failed_assumptions: Vec::new(),
        proof: None,
    }
}

/// Body of one resident worker thread.
fn worker_main(i: usize, gate: &Gate<Job, WorkerReport>, config: &PortfolioConfig, ends: MeshEnds) {
    fec_trace::set_thread_name(format!("pool-worker-{i}"));
    let (mut s, logger) = build_worker(i, 0, &[], config);
    s.set_stop_flag(gate.stop_handle());
    let (prods, cons) = ends;
    if config.share_lbd_max > 0 {
        s.set_export_hook(
            Box::new(move |lits, lbd| {
                fec_trace::hist!(fec_trace::Level::Debug, "portfolio.share.lbd", lbd);
                for p in &prods {
                    p.push((lits.to_vec(), lbd));
                }
            }),
            config.share_lbd_max,
        );
        s.set_import_hook(Box::new(move || {
            let mut batch = Vec::new();
            for c in &cons {
                batch.extend(c.drain());
            }
            observe_import(i, batch.len());
            batch
        }));
    }
    // totals already reported: each solve report is a per-query delta
    let mut reported = SolverStats::default();
    let mut last_gen = 0usize;
    loop {
        let Some(gen) = gate.poll(last_gen) else {
            thread::park();
            continue;
        };
        last_gen = gen;
        // apply the delta while borrowing the job, then copy out the
        // small fields we still need after the borrow ends
        let (kind, assumptions, budget, num_vars, waker) = gate.with_job(|job| {
            if matches!(job.kind, JobKind::Load | JobKind::Solve) {
                apply_delta(&mut s, job.num_vars, &job.clauses);
            }
            (
                job.kind,
                job.lits.clone(),
                job.budget,
                job.num_vars,
                job.waker.clone(),
            )
        });
        match kind {
            JobKind::Quit => {
                gate.submit(i, blank_report());
                waker.unpark();
                break;
            }
            JobKind::Load => {
                gate.submit(i, blank_report());
                waker.unpark();
            }
            JobKind::Inprocess => {
                s.preprocess(&assumptions);
                gate.submit(i, blank_report());
                waker.unpark();
            }
            JobKind::Solve => {
                let _wsp = fec_trace::span!(
                    fec_trace::Level::Trace,
                    "portfolio.pool.worker",
                    "worker" => i,
                );
                let worker_start = Instant::now();
                let result = s.solve_with_budget(&assumptions, budget);
                // first verdict wins this generation's election and
                // cancels the rest — same CAS discipline as the
                // one-shot engine, on slots reset at publish
                let won = result != SolveResult::Unknown && gate.try_win(i);
                if won {
                    fec_trace::event!(
                        fec_trace::Level::Debug,
                        "portfolio.win",
                        "worker" => i,
                        "conflicts" => s.stats().conflicts,
                    );
                }
                let delta = s.stats().delta_since(&reported);
                reported = s.stats();
                emit_worker_done(i, &delta, result, won, worker_start);
                let mut rep = report(&s, result, num_vars, None, won);
                rep.stats = delta;
                // every worker ships its segment every query — the
                // stitched per-worker streams upstream need losers'
                // derivations too (their next-query imports may
                // depend on them)
                rep.proof = logger.as_ref().map(|l| l.take_steps());
                gate.submit(i, rep);
                waker.unpark();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PortfolioConfig;

    fn lit(i: i32) -> Lit {
        let v = Var::from_index((i.unsigned_abs() - 1) as usize);
        if i > 0 {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    fn cnf(clauses: &[&[i32]]) -> Vec<Vec<Lit>> {
        clauses
            .iter()
            .map(|c| c.iter().map(|&l| lit(l)).collect())
            .collect()
    }

    fn workout(config: &PortfolioConfig) {
        let mut pool = Pool::new(config);
        // query 1: satisfiable 3-var formula
        let out = pool.solve(
            3,
            cnf(&[&[1, 2], &[-1, 2], &[-2, 3]]),
            Vec::new(),
            Budget::unlimited(),
        );
        assert_eq!(out.result, SolveResult::Sat);
        assert_eq!(out.value(Var::from_index(1)), Some(true));
        assert_eq!(out.stats.shipped_clauses, (3 * pool.jobs()) as u64);
        // query 2: only the delta ships; formula forced UNSAT
        let out = pool.solve(
            3,
            cnf(&[&[-2], &[2, -3], &[3]]),
            Vec::new(),
            Budget::unlimited(),
        );
        assert_eq!(out.result, SolveResult::Unsat);
        assert_eq!(out.stats.shipped_clauses, (3 * pool.jobs()) as u64);
        // per-query deltas: each query cost each worker at most one
        // solve call (threaded) — never the session total
        for w in &out.stats.workers {
            assert!(w.solve_calls <= 4, "delta leaked cumulative totals");
        }
    }

    #[test]
    fn warm_pool_single_worker() {
        workout(&PortfolioConfig::with_jobs(1));
    }

    #[test]
    fn warm_pool_threaded() {
        workout(&PortfolioConfig::with_jobs(3));
    }

    #[test]
    fn warm_pool_deterministic() {
        let cfg = PortfolioConfig {
            deterministic: true,
            det_slice_conflicts: 64,
            ..PortfolioConfig::with_jobs(3)
        };
        workout(&cfg);
    }

    #[test]
    fn warm_assumption_session() {
        // the CEGIS verifier shape: one load, many assumption-only
        // solves — queries after the first ship zero clauses
        let mut pool = Pool::new(&PortfolioConfig::with_jobs(2));
        pool.load(4, cnf(&[&[1, 2, 3, 4], &[-1, -2], &[-3, -4]]));
        let mut shipped = 0;
        for i in 0..3 {
            let out = pool.solve(4, Vec::new(), vec![lit(i + 1)], Budget::unlimited());
            assert_eq!(out.result, SolveResult::Sat, "assuming {} is sat", i + 1);
            shipped += out.stats.shipped_clauses;
        }
        assert_eq!(shipped, 0, "assumption-only queries shipped clauses");
        let out = pool.solve(
            4,
            cnf(&[&[-1], &[-2], &[-3], &[-4]]),
            Vec::new(),
            Budget::unlimited(),
        );
        assert_eq!(out.result, SolveResult::Unsat);
        assert_eq!(out.stats.shipped_clauses, 8);
    }

    #[test]
    fn certified_segments_stitch_per_worker() {
        let cfg = PortfolioConfig {
            certify: true,
            ..PortfolioConfig::with_jobs(2)
        };
        let mut pool = Pool::new(&cfg);
        let q1 = pool.solve(
            2,
            cnf(&[&[1, 2], &[-1, 2]]),
            Vec::new(),
            Budget::unlimited(),
        );
        assert_eq!(q1.result, SolveResult::Sat);
        assert_eq!(q1.proof_segments.len(), 2);
        let q2 = pool.solve(2, cnf(&[&[-2]]), Vec::new(), Budget::unlimited());
        assert_eq!(q2.result, SolveResult::Unsat);
        let w = q2.stats.winner.expect("unsat query has a winner");
        // stitch the winner's two segments and replay them through the
        // independent checker: the warm answer stays certifiable
        let mut checker = fec_drat::Checker::new();
        for seg in [&q1.proof_segments[w], &q2.proof_segments[w]] {
            for step in seg.iter() {
                checker.process(step).expect("stitched stream checks");
            }
        }
        assert!(checker.is_refuted(), "stitched stream proves UNSAT");
    }
}
