//! Bounded lock-free single-producer single-consumer ring buffer.
//!
//! The sharing fabric of the portfolio: every ordered worker pair
//! `(i, j)` gets one ring, written only by worker `i`'s export hook and
//! drained only by worker `j`'s import hook. With exactly one producer
//! thread and one consumer thread per ring, a head/tail pair of atomics
//! with acquire/release ordering is sufficient — no locks, no CAS loops,
//! no allocation after construction.
//!
//! The ring is *lossy by design*: pushing into a full ring drops the
//! item (and counts it). Clause sharing is an optimization, not a
//! correctness requirement, so backpressure on the exporting solver
//! would be strictly worse than forgetting a clause.
//!
//! Every slot access and atomic goes through [`crate::sync`], so with
//! `--features fec_check` this exact code compiles against the
//! `fec-check` model-checker shims and its acquire/release protocol is
//! verified exhaustively over thread interleavings (`tests/model.rs`);
//! the DESIGN.md section "Memory-model assumptions" documents each
//! ordering pair and what publishes what.

use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::cell::UnsafeCell;
use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::Arc;

struct Inner<T> {
    slots: Box<[UnsafeCell<Option<T>>]>,
    /// Next slot the consumer will read (monotonically increasing,
    /// indexed modulo capacity).
    head: AtomicUsize,
    /// Next slot the producer will write.
    tail: AtomicUsize,
    /// Items discarded because the ring was full.
    dropped: AtomicUsize,
}

// Safety: the slot array is shared between exactly two threads, and the
// head/tail protocol below guarantees a slot is never accessed by both
// sides at once: the producer only writes slot `tail` when
// `tail - head < capacity` (slot outside the consumer's readable range)
// and publishes it with a release store; the consumer only reads slot
// `head` when `head < tail` (acquire-loaded), i.e. after publication.
// `T: Send` is required because items physically move across threads;
// non-`Send` payloads are rejected at compile time (see the
// `compile_fail` test on [`spsc`]).
unsafe impl<T: Send> Sync for Inner<T> {}

/// Write half of an SPSC ring — exactly one producer.
///
/// `Producer` is `Send` (hand it to the producing thread) but
/// deliberately **not** `Sync` or `Clone`: two threads pushing through
/// a shared `&Producer` would both write slot `tail`, violating the
/// single-producer protocol the safety argument rests on.
///
/// ```compile_fail
/// let (p, _c) = fec_portfolio::spsc::<u64>(8);
/// // &Producer cannot cross threads: Producer is !Sync
/// std::thread::scope(|s| {
///     s.spawn(|| p.push(1));
///     s.spawn(|| p.push(2));
/// });
/// ```
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
    /// `Cell` is `Send + !Sync`: keeps the half out of shared borrows
    /// without giving up moving it into its thread.
    _not_sync: PhantomData<Cell<()>>,
}

/// Read half of an SPSC ring — exactly one consumer. Like
/// [`Producer`], `Send` but not `Sync`/`Clone`.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
    _not_sync: PhantomData<Cell<()>>,
}

/// Creates a ring holding at most `capacity` items (rounded up to a
/// power of two, minimum 2).
///
/// Items cross a thread boundary, so non-`Send` payloads are rejected:
///
/// ```compile_fail
/// // Rc is !Send: must not compile
/// let (_p, _c) = fec_portfolio::spsc::<std::rc::Rc<u8>>(4);
/// ```
pub fn spsc<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let slots = (0..cap)
        .map(|_| UnsafeCell::new(None))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let inner = Arc::new(Inner {
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        dropped: AtomicUsize::new(0),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
            _not_sync: PhantomData,
        },
        Consumer {
            inner,
            _not_sync: PhantomData,
        },
    )
}

impl<T> Producer<T> {
    /// Appends `item`, or drops it (returning `false`) when the ring is
    /// full.
    pub fn push(&self, item: T) -> bool {
        let inner = &*self.inner;
        let tail = inner.tail.load(Ordering::Relaxed);
        let head = inner.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= inner.slots.len() {
            inner.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let slot = &inner.slots[tail & (inner.slots.len() - 1)];
        // Safety: see `unsafe impl Sync` — this slot is outside the
        // consumer's readable range (the acquire load of `head` above
        // proved the consumer is done with it), and stays ours until
        // the release store of `tail` below publishes it.
        slot.with_mut(|p| unsafe { *p = Some(item) });
        inner.tail.store(tail.wrapping_add(1), Ordering::Release);
        true
    }

    /// Items dropped so far because the ring was full.
    pub fn dropped(&self) -> usize {
        self.inner.dropped.load(Ordering::Relaxed)
    }
}

impl<T> Consumer<T> {
    /// Removes and returns the oldest item, or `None` when empty.
    pub fn pop(&self) -> Option<T> {
        let inner = &*self.inner;
        let head = inner.head.load(Ordering::Relaxed);
        let tail = inner.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot = &inner.slots[head & (inner.slots.len() - 1)];
        // Safety: head < tail (acquire), so the producer has published
        // this slot and will not touch it again until the release store
        // of `head` below returns it. Taking the value mutates the
        // slot, hence `with_mut`.
        let item = slot.with_mut(|p| unsafe { (*p).take() });
        inner.head.store(head.wrapping_add(1), Ordering::Release);
        debug_assert!(item.is_some(), "published slot must hold an item");
        item
    }

    /// Drains everything currently buffered.
    pub fn drain(&self) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(x) = self.pop() {
            out.push(x);
        }
        out
    }
}

#[cfg(all(test, not(feature = "fec_check")))]
mod tests {
    use super::*;
    use std::thread;

    // Both halves move into their threads; neither may be shared.
    fn assert_send<T: Send>() {}

    #[test]
    fn halves_are_send() {
        assert_send::<Producer<Vec<u32>>>();
        assert_send::<Consumer<Vec<u32>>>();
    }

    #[test]
    fn fifo_order_and_capacity() {
        let (p, c) = spsc::<u32>(4);
        for i in 0..4 {
            assert!(p.push(i));
        }
        assert!(!p.push(99), "5th push must drop");
        assert_eq!(p.dropped(), 1);
        assert_eq!(c.drain(), vec![0, 1, 2, 3]);
        assert_eq!(c.pop(), None);
        // space freed: push works again
        assert!(p.push(7));
        assert_eq!(c.pop(), Some(7));
    }

    #[test]
    fn capacity_rounds_up() {
        let (p, c) = spsc::<u8>(3);
        for i in 0..4 {
            assert!(p.push(i), "rounded capacity is 4");
        }
        assert!(!p.push(4));
        assert_eq!(c.drain().len(), 4);
    }

    #[test]
    fn cross_thread_transfer() {
        let (p, c) = spsc::<u64>(1024);
        // Miri interprets ~1000x slower; a smaller stream exercises the
        // same wraparound and handoff paths.
        let total: u64 = if cfg!(miri) { 300 } else { 10_000 };
        let producer = thread::spawn(move || {
            let mut sent = 0u64;
            for i in 0..total {
                if p.push(i) {
                    sent += 1;
                }
            }
            sent
        });
        let mut got = Vec::new();
        while !producer.is_finished() || got.is_empty() {
            got.extend(c.drain());
        }
        let sent = producer.join().unwrap();
        got.extend(c.drain());
        assert_eq!(got.len() as u64, sent);
        // FIFO: the received subsequence is strictly increasing
        assert!(got.windows(2).all(|w| w[0] < w[1]));
    }
}
