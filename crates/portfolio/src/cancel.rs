//! First-to-finish winner election and cooperative cancellation.
//!
//! The portfolio's termination protocol, factored out of the engine so
//! it can be compiled against the `fec-check` shims and model-checked
//! (see `tests/model.rs`):
//!
//! 1. every worker races to [`Election::try_win`] when it reaches a
//!    verdict; a compare-exchange on the winner slot guarantees exactly
//!    one succeeds, no matter how the finishes interleave;
//! 2. the winner — and only the winner — raises the stop flag, which
//!    the losing workers' solvers poll inside their propagation loops
//!    and abort on;
//! 3. only the CAS winner extracts its model/proof, so the answer
//!    reported upward is unambiguous even when several workers finish
//!    near-simultaneously.
//!
//! Memory-ordering contract (verified by the model tests, documented
//! in DESIGN.md "Memory-model assumptions"): the CAS is `AcqRel` so
//! the winner's identity is a unique, totally-ordered decision; the
//! stop flag is published with `Release` and may be polled with
//! `Relaxed` because it carries no data — it only hastens loser
//! shutdown, and the losers' reports synchronize with the parent via
//! thread join.

use crate::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

#[cfg(not(feature = "fec_check"))]
use std::sync::Arc;

/// Sentinel stored in the winner slot while the race is undecided.
const NO_WINNER: usize = usize::MAX;

/// One solve call's winner election: a winner slot plus the stop flag
/// broadcast to every worker's solver.
pub struct Election {
    winner: AtomicUsize,
    #[cfg(not(feature = "fec_check"))]
    stop: Arc<AtomicBool>,
    #[cfg(feature = "fec_check")]
    stop: AtomicBool,
}

impl Election {
    /// A fresh election: no winner, stop flag down.
    pub fn new() -> Self {
        Election {
            winner: AtomicUsize::new(NO_WINNER),
            #[cfg(not(feature = "fec_check"))]
            stop: Arc::new(AtomicBool::new(false)),
            #[cfg(feature = "fec_check")]
            stop: AtomicBool::new(false),
        }
    }

    /// Claims the race for `worker`. Returns `true` for exactly one
    /// caller per election; the winner raises the stop flag before
    /// returning, cancelling every other worker.
    pub fn try_win(&self, worker: usize) -> bool {
        debug_assert_ne!(worker, NO_WINNER, "worker id collides with the sentinel");
        let won = self
            .winner
            .compare_exchange(NO_WINNER, worker, Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        if won {
            self.stop.store(true, Ordering::Release);
        }
        won
    }

    /// The winning worker, once decided.
    pub fn winner(&self) -> Option<usize> {
        let w = self.winner.load(Ordering::Acquire);
        (w != NO_WINNER).then_some(w)
    }

    /// Whether some worker has won and cancellation is under way.
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// The stop flag in the form [`fec_sat::Solver::set_stop_flag`]
    /// expects; the solver polls it with `Relaxed` loads inside its
    /// propagation loop.
    #[cfg(not(feature = "fec_check"))]
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }
}

impl Default for Election {
    fn default() -> Self {
        Election::new()
    }
}

#[cfg(all(test, not(feature = "fec_check")))]
mod tests {
    use super::*;

    #[test]
    fn exactly_one_winner_sequentially() {
        let e = Election::new();
        assert_eq!(e.winner(), None);
        assert!(!e.stop_requested());
        assert!(e.try_win(3));
        assert!(e.stop_requested());
        assert!(e.stop_handle().load(Ordering::Relaxed));
        assert!(!e.try_win(1), "second claim must lose");
        assert_eq!(e.winner(), Some(3));
    }

    #[test]
    fn concurrent_claims_elect_one() {
        let e = std::sync::Arc::new(Election::new());
        let wins: Vec<bool> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let e = std::sync::Arc::clone(&e);
                    s.spawn(move || e.try_win(i))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(wins.iter().filter(|&&w| w).count(), 1);
        let w = e.winner().unwrap();
        assert!(wins[w]);
    }
}
