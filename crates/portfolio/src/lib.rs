//! Parallel portfolio SAT solving.
//!
//! Races N diversified `fec-sat` CDCL workers over the same CNF: each
//! worker gets a distinct [`fec_sat::SolverConfig`] (restart schedule,
//! VSIDS decay, initial phases, seeded tie-breaking), workers exchange
//! low-LBD learned clauses through bounded lock-free SPSC rings, and the
//! first worker to reach a verdict cancels the rest through an atomic
//! stop flag checked inside their propagation loops.
//!
//! Three execution modes, one entry point ([`solve`]):
//!
//! - `jobs == 1` — no threads, no rings; behaves exactly like a plain
//!   `Solver` with the default config.
//! - parallel (default for `jobs > 1`) — one OS thread per worker,
//!   first-to-finish wins.
//! - [`PortfolioConfig::deterministic`] — the same workers run
//!   cooperatively on the calling thread in fixed round-robin conflict
//!   slices with synchronous sharing epochs: same seed ⇒ same winner
//!   and bit-for-bit identical statistics, for reproducible CI.
//!
//! # Certification
//!
//! With [`PortfolioConfig::certify`], every worker logs a DRAT stream
//! and the *winner's* stream is returned. Clause sharing would normally
//! break proof self-containedness — an imported clause is a consequence
//! of the shared formula but not necessarily derivable by unit
//! propagation from the importer's own database — so under proof
//! logging the solver RUP-filters every import (see
//! `Solver::set_import_hook`): a shared clause is admitted only if
//! reverse unit propagation over the importer's live database derives
//! it, and is then logged as an ordinary learned clause. The winning
//! proof therefore checks stand-alone with `fec-drat`.
//!
//! See [`solve`] for a worked example.
//!
//! # Model checking the lock-free core
//!
//! The SPSC sharing ring and the winner election are hand-written
//! lock-free code; their correctness is *model-checked*, not just
//! example-tested. With `--features fec_check` the `ring` and `cancel`
//! modules compile against the `fec-check` shims (swapped in by the
//! private `sync` module) and `tests/model.rs` exhaustively explores
//! their thread interleavings — including mutation tests proving a
//! downgraded memory ordering is caught as a data race. The solve
//! engine itself is compiled out under that feature (real solver
//! threads cannot run inside a model); normal builds pay zero cost.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod cancel;
#[cfg(not(feature = "fec_check"))]
mod engine;
pub mod gate;
#[cfg(not(feature = "fec_check"))]
mod pool;
mod ring;
mod sync;

pub use cancel::Election;
#[cfg(not(feature = "fec_check"))]
pub use engine::{solve, PortfolioOutcome, PortfolioStats};
pub use gate::Gate;
#[cfg(not(feature = "fec_check"))]
pub use pool::{Pool, PoolOutcome};
pub use ring::{spsc, Consumer, Producer};

use fec_sat::{PhaseInit, RestartPolicy, SimplifyConfig, SolverConfig};

/// Portfolio-level configuration.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PortfolioConfig {
    /// Number of workers. `1` means plain single-threaded solving.
    pub jobs: usize,
    /// Learned clauses with LBD at most this are shared with peers;
    /// `0` disables sharing entirely.
    pub share_lbd_max: u32,
    /// Capacity of each pairwise sharing ring (rounded up to a power of
    /// two). Full rings drop clauses rather than block the exporter.
    pub ring_capacity: usize,
    /// Run workers in fixed round-robin conflict slices on the calling
    /// thread instead of racing threads: reproducible, but no parallel
    /// speedup.
    pub deterministic: bool,
    /// Conflicts per worker slice in deterministic mode.
    pub det_slice_conflicts: u64,
    /// Base seed; worker `i` derives its own seed from it.
    pub seed: u64,
    /// Log a DRAT stream in every worker and return the winner's.
    pub certify: bool,
    /// Enable the SatELite-style pre-/inprocessing pipeline in the
    /// workers, *diversified* per worker (see [`diversify_simplify`]):
    /// different workers run different technique mixes, so the
    /// portfolio hedges across simplifier behaviours the same way it
    /// hedges across restart schedules.
    pub simplify: bool,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            jobs: 1,
            share_lbd_max: 6,
            ring_capacity: 2048,
            deterministic: false,
            det_slice_conflicts: 2000,
            seed: 0,
            certify: false,
            simplify: false,
        }
    }
}

impl PortfolioConfig {
    /// Default configuration with `jobs` workers.
    pub fn with_jobs(jobs: usize) -> Self {
        PortfolioConfig {
            jobs: jobs.max(1),
            ..PortfolioConfig::default()
        }
    }
}

/// The diversification schedule: the solver configuration of worker
/// `worker` under base seed `seed`.
///
/// Worker 0 always runs the stock default configuration, so a 1-job
/// portfolio is exactly the plain solver. Workers 1.. cycle through six
/// hand-picked heuristic mixes (restart cadence × decay × phase
/// polarity × tie-break randomization) with per-worker seeds, repeating
/// with different seeds past worker 6 — more workers never repeat an
/// identical search.
pub fn diversify(worker: usize, seed: u64) -> SolverConfig {
    // distinct, deterministic per-worker seed (splitmix-style mixing)
    let wseed =
        (seed ^ (worker as u64).wrapping_mul(0x9E3779B97F4A7C15)).wrapping_add(0xD1B54A32D192ED03);
    if worker == 0 {
        return SolverConfig {
            seed: wseed,
            ..SolverConfig::default()
        };
    }
    let base = SolverConfig {
        seed: wseed,
        ..SolverConfig::default()
    };
    match (worker - 1) % 6 {
        0 => SolverConfig {
            // deep dives: slow geometric restarts
            restart: RestartPolicy::Geometric {
                base: 100,
                factor: 1.5,
            },
            ..base
        },
        1 => SolverConfig {
            // aggressive focus on recent conflicts, opposite polarity
            var_decay: 0.90,
            phase_init: PhaseInit::AllTrue,
            ..base
        },
        2 => SolverConfig {
            // slow decay (broad activity memory), randomized everything
            var_decay: 0.99,
            restart: RestartPolicy::Geometric {
                base: 128,
                factor: 1.3,
            },
            phase_init: PhaseInit::Random,
            randomize_order: true,
            ..base
        },
        3 => SolverConfig {
            // lazy Luby with random phases
            restart: RestartPolicy::Luby { base: 256 },
            phase_init: PhaseInit::Random,
            randomize_order: true,
            ..base
        },
        4 => SolverConfig {
            // doubling geometric, shuffled branching order
            var_decay: 0.97,
            restart: RestartPolicy::Geometric {
                base: 100,
                factor: 2.0,
            },
            randomize_order: true,
            ..base
        },
        _ => SolverConfig {
            // rapid Luby with very aggressive decay
            var_decay: 0.85,
            restart: RestartPolicy::Luby { base: 50 },
            phase_init: PhaseInit::Random,
            randomize_order: true,
            ..base
        },
    }
}

/// The simplifier diversification schedule: the [`SimplifyConfig`] of
/// worker `worker` when [`PortfolioConfig::simplify`] is set.
///
/// Worker 0 runs the stock `SimplifyConfig::on()` pipeline (so a 1-job
/// simplifying portfolio is exactly the plain simplifying solver);
/// workers 1.. cycle through four technique mixes so that a formula
/// pathological for one technique (e.g. BVE blow-up on XOR chains) is
/// still simplified productively by some peer:
///
/// 1. elimination-focused: BVE + subsumption only, no probing/vivification
/// 2. propagation-focused: probing + vivification only, no BVE
/// 3. aggressive: everything, tight inprocessing cadence, more growth
/// 4. preprocessing only: one full pass up front, never inprocess
pub fn diversify_simplify(worker: usize) -> SimplifyConfig {
    if worker == 0 {
        return SimplifyConfig::on();
    }
    let base = SimplifyConfig::on();
    match (worker - 1) % 4 {
        0 => SimplifyConfig {
            probe: false,
            vivify: false,
            ..base
        },
        1 => SimplifyConfig {
            bve: false,
            subsume: true,
            ..base
        },
        2 => SimplifyConfig {
            inprocess_interval: 5,
            bve_grow: 8,
            bve_clause_limit: 32,
            probe_budget: 8_000,
            vivify_budget: 2_000,
            ..base
        },
        _ => SimplifyConfig {
            inprocess_interval: 0,
            ..base
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_zero_is_stock_config() {
        let c = diversify(0, 7);
        let d = SolverConfig::default();
        assert_eq!(c.var_decay, d.var_decay);
        assert_eq!(c.restart, d.restart);
        assert_eq!(c.phase_init, d.phase_init);
        assert!(!c.randomize_order);
    }

    #[test]
    fn diversification_is_distinct_and_deterministic() {
        let configs: Vec<SolverConfig> = (0..8).map(|i| diversify(i, 42)).collect();
        // deterministic
        for (i, c) in configs.iter().enumerate() {
            assert_eq!(*c, diversify(i, 42));
        }
        // pairwise distinct (seeds differ even when knobs repeat)
        for i in 0..configs.len() {
            for j in i + 1..configs.len() {
                assert_ne!(configs[i], configs[j], "workers {i} and {j} identical");
            }
        }
        // a different base seed changes every worker
        for i in 0..8 {
            assert_ne!(diversify(i, 42).seed, diversify(i, 43).seed);
        }
    }

    #[test]
    fn simplify_diversification() {
        // worker 0 is the stock full pipeline
        assert_eq!(diversify_simplify(0), SimplifyConfig::on());
        // every mix actually simplifies
        for w in 0..8 {
            assert!(diversify_simplify(w).enabled(), "worker {w} mix inert");
        }
        // the four mixes are pairwise distinct and then repeat
        let mixes: Vec<SimplifyConfig> = (1..5).map(diversify_simplify).collect();
        for i in 0..mixes.len() {
            for j in i + 1..mixes.len() {
                assert_ne!(mixes[i], mixes[j], "mixes {i} and {j} identical");
            }
        }
        assert_eq!(diversify_simplify(5), diversify_simplify(1));
        // the elimination-focused mix really drops probing/vivification
        let elim = diversify_simplify(1);
        assert!(elim.bve && elim.subsume && !elim.probe && !elim.vivify);
        // the propagation-focused mix really drops BVE
        assert!(!diversify_simplify(2).bve);
        // and the preprocess-only mix never inprocesses
        let pre = diversify_simplify(4);
        assert!(pre.preprocess && pre.inprocess_interval == 0);
        // off by default at the portfolio level
        assert!(!PortfolioConfig::default().simplify);
    }

    #[test]
    fn default_config() {
        let c = PortfolioConfig::default();
        assert_eq!(c.jobs, 1);
        assert_eq!(c.share_lbd_max, 6);
        assert!(!c.deterministic);
        assert!(!c.certify);
        assert_eq!(PortfolioConfig::with_jobs(0).jobs, 1);
        assert_eq!(PortfolioConfig::with_jobs(4).jobs, 4);
    }
}
