//! Swappable concurrency primitives for the lock-free core.
//!
//! Everything in `ring.rs` and `cancel.rs` goes through this module
//! instead of naming `std::sync::atomic` / `std::cell` directly. In
//! normal builds the re-exports below are the `std` types (the
//! `UnsafeCell` wrapper's closure accessors inline to nothing); with
//! `--features fec_check` they become the `fec-check` model-checker
//! shims, which record every access and let the checker exhaustively
//! explore thread interleavings and flag data races. The swap is the
//! whole integration: the *same* production code paths are what the
//! model tests in `tests/model.rs` verify.

#[cfg(not(feature = "fec_check"))]
pub(crate) mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
}

#[cfg(not(feature = "fec_check"))]
pub(crate) mod cell {
    /// `std::cell::UnsafeCell` behind the loom-style closure API, so
    /// the identical call sites compile against the `fec-check` shim.
    #[derive(Debug)]
    pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

    impl<T> UnsafeCell<T> {
        pub fn new(data: T) -> Self {
            UnsafeCell(std::cell::UnsafeCell::new(data))
        }

        /// Shared read access. Kept for API parity with the shim even
        /// though the ring's `pop` mutates (it `take`s the slot) and
        /// therefore uses `with_mut` for both sides.
        #[allow(dead_code)]
        #[inline(always)]
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        #[inline(always)]
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }
    }
}

#[cfg(feature = "fec_check")]
pub(crate) use fec_check::cell;

#[cfg(feature = "fec_check")]
pub(crate) mod atomic {
    pub use fec_check::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
}
