//! The portfolio solve engine.

use crate::cancel::Election;
use crate::ring::{spsc, Consumer, Producer};
use crate::{diversify, diversify_simplify, PortfolioConfig};
use fec_sat::{Budget, Lit, MemoryProofLogger, ProofStep, SolveResult, Solver, SolverStats, Var};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// A clause in flight between workers: literals plus LBD at export time.
pub(crate) type SharedClause = (Vec<Lit>, u32);

/// Aggregate statistics of one portfolio solve call.
#[derive(Clone, Debug, Default)]
pub struct PortfolioStats {
    /// Index of the worker that produced the answer (`None` on
    /// `Unknown`).
    pub winner: Option<usize>,
    /// Per-worker search statistics, indexed by worker id.
    pub workers: Vec<SolverStats>,
    /// Field-wise sum over all workers.
    pub total: SolverStats,
    /// Wall-clock time of the whole call.
    pub wall: Duration,
    /// Clauses physically transferred into workers for this call,
    /// summed over workers. One-shot [`solve`] re-ships the whole
    /// formula to every worker; the warm [`crate::Pool`] ships only the
    /// per-query delta — the regression tests assert exactly this.
    pub shipped_clauses: u64,
}

/// Result of a portfolio solve call.
pub struct PortfolioOutcome {
    /// The verdict (all workers solve the same formula, so any verdicts
    /// produced agree; the first to finish is reported).
    pub result: SolveResult,
    /// On `Sat`: the winner's model, indexed by variable.
    pub model: Option<Vec<Option<bool>>>,
    /// On `Unsat` under assumptions: the winner's failed-assumption
    /// subset.
    pub failed_assumptions: Vec<Lit>,
    /// Aggregate and per-worker statistics.
    pub stats: PortfolioStats,
    /// With [`PortfolioConfig::certify`]: the winning worker's complete
    /// proof stream (inputs + its own learned clauses + RUP-filtered
    /// imports), checkable stand-alone by `fec-drat`.
    pub winner_proof: Option<Vec<ProofStep>>,
}

impl PortfolioOutcome {
    /// The winner's assignment of `v` (`None` when unassigned or when
    /// the result was not `Sat`).
    pub fn value(&self, v: Var) -> Option<bool> {
        self.model.as_ref().and_then(|m| m[v.index()])
    }
}

/// What one worker sends back from its thread. The solver itself is not
/// `Send` (its proof logger may hold an `Rc`), so workers are built and
/// dropped inside their threads and only plain data crosses back.
pub(crate) struct WorkerReport {
    pub(crate) result: SolveResult,
    pub(crate) stats: SolverStats,
    pub(crate) model: Option<Vec<Option<bool>>>,
    pub(crate) failed_assumptions: Vec<Lit>,
    pub(crate) proof: Option<Vec<ProofStep>>,
}

/// Builds one diversified worker over the shared formula.
pub(crate) fn build_worker(
    worker: usize,
    num_vars: usize,
    clauses: &[Vec<Lit>],
    config: &PortfolioConfig,
) -> (Solver, Option<MemoryProofLogger>) {
    let mut cfg = diversify(worker, config.seed);
    if config.simplify {
        cfg.simplify = diversify_simplify(worker);
    }
    let mut s = Solver::with_config(cfg);
    // install the logger before the clauses so the stream records the
    // whole input formula
    let logger = if config.certify {
        let l = MemoryProofLogger::new();
        s.set_proof_logger(Box::new(l.clone()));
        Some(l)
    } else {
        None
    };
    for _ in 0..num_vars {
        s.new_var();
    }
    for c in clauses {
        if !s.add_clause(c) {
            break; // formula already refuted at level 0
        }
    }
    (s, logger)
}

/// Extracts the winner-side data from a finished solver.
pub(crate) fn report(
    s: &Solver,
    result: SolveResult,
    num_vars: usize,
    logger: Option<&MemoryProofLogger>,
    extract: bool,
) -> WorkerReport {
    let (model, failed, proof) = if extract {
        let model = (result == SolveResult::Sat)
            .then(|| (0..num_vars).map(|v| s.value(Var::from_index(v))).collect());
        let failed = if result == SolveResult::Unsat {
            s.failed_assumptions().to_vec()
        } else {
            Vec::new()
        };
        (model, failed, logger.map(|l| l.take_steps()))
    } else {
        (None, Vec::new(), None)
    };
    WorkerReport {
        result,
        stats: s.stats(),
        model,
        failed_assumptions: failed,
        proof,
    }
}

/// Solves `clauses` over `num_vars` variables under `assumptions`,
/// racing `config.jobs` diversified CDCL workers.
///
/// Every worker receives the full budget; the first worker to reach a
/// verdict wins the [`Election`] and the rest cancel cooperatively
/// inside their propagation loops. `Unknown` is returned only when
/// *no* worker finished within the budget.
///
/// ```
/// use fec_portfolio::{solve, PortfolioConfig};
/// use fec_sat::{Budget, Lit, SolveResult, Var};
///
/// let v = |i| Var::from_index(i);
/// let clauses = vec![
///     vec![Lit::pos(v(0)), Lit::pos(v(1))],
///     vec![Lit::neg(v(0)), Lit::pos(v(1))],
/// ];
/// let out = solve(
///     2,
///     &clauses,
///     &[],
///     Budget::unlimited(),
///     &PortfolioConfig::with_jobs(4),
/// );
/// assert_eq!(out.result, SolveResult::Sat);
/// assert_eq!(out.value(v(1)), Some(true));
/// ```
pub fn solve(
    num_vars: usize,
    clauses: &[Vec<Lit>],
    assumptions: &[Lit],
    budget: Budget,
    config: &PortfolioConfig,
) -> PortfolioOutcome {
    let start = Instant::now();
    let n = config.jobs.max(1);
    let _sp = fec_trace::span!(
        fec_trace::Level::Trace,
        "portfolio.solve",
        "jobs" => n,
        "clauses" => clauses.len(),
        "vars" => num_vars,
        "share_lbd_max" => config.share_lbd_max,
    );
    let reports = if n == 1 {
        vec![run_single(num_vars, clauses, assumptions, budget, config)]
    } else if config.deterministic {
        run_round_robin(n, num_vars, clauses, assumptions, budget, config)
    } else {
        run_parallel(n, num_vars, clauses, assumptions, budget, config)
    };
    let mut out = assemble(reports, start.elapsed());
    // one-shot mode re-ships the entire formula to every worker
    out.stats.shipped_clauses = (clauses.len() * n) as u64;
    if fec_trace::enabled(fec_trace::Level::Debug) {
        // per-call clause-sharing traffic (workers are fresh each call,
        // so the totals are this query's traffic, not cumulative)
        fec_trace::counter!(
            fec_trace::Level::Debug,
            "portfolio.shared.exported",
            out.stats.total.exported_clauses
        );
        fec_trace::counter!(
            fec_trace::Level::Debug,
            "portfolio.shared.imported",
            out.stats.total.imported_clauses
        );
        fec_trace::counter!(
            fec_trace::Level::Debug,
            "portfolio.shared.rejected",
            out.stats.total.rejected_clauses
        );
        fec_trace::event!(
            fec_trace::Level::Debug,
            "portfolio.done",
            "result" => match out.result {
                SolveResult::Sat => "sat",
                SolveResult::Unsat => "unsat",
                SolveResult::Unknown => "unknown",
            },
            "winner" => out.stats.winner.map_or(-1i64, |w| w as i64),
            "conflicts" => out.stats.total.conflicts,
            "wall_us" => out.stats.wall.as_micros() as u64,
        );
    }
    out
}

/// Fast path: one worker, no threads, no rings.
fn run_single(
    num_vars: usize,
    clauses: &[Vec<Lit>],
    assumptions: &[Lit],
    budget: Budget,
    config: &PortfolioConfig,
) -> WorkerReport {
    let (mut s, logger) = build_worker(0, num_vars, clauses, config);
    let result = s.solve_with_budget(assumptions, budget);
    report(
        &s,
        result,
        num_vars,
        logger.as_ref(),
        result != SolveResult::Unknown,
    )
}

/// Records one import-hook drain for worker `i`: the batch size into
/// the share-traffic histogram and the per-worker backlog gauge (the
/// drain happens at a restart boundary, so the batch size *is* the
/// queue depth that built up since the previous restart).
pub(crate) fn observe_import(i: usize, batch: usize) {
    if fec_trace::enabled(fec_trace::Level::Debug) {
        fec_trace::hist(
            fec_trace::Level::Debug,
            "portfolio.import.batch",
            batch as u64,
        );
        fec_trace::gauge(
            fec_trace::Level::Debug,
            &format!("portfolio.w{i}.queue_depth"),
            batch as i64,
        );
    }
}

/// One `portfolio.worker.done` event per worker with its full effort
/// breakdown — the per-worker view that makes sub-1.0× speedups
/// diagnosable (who burned the conflicts, who idled, who lost the
/// race after how long).
pub(crate) fn emit_worker_done(
    i: usize,
    stats: &SolverStats,
    result: SolveResult,
    won: bool,
    started: Instant,
) {
    fec_trace::event!(
        fec_trace::Level::Debug,
        "portfolio.worker.done",
        "worker" => i,
        "result" => match result {
            SolveResult::Sat => "sat",
            SolveResult::Unsat => "unsat",
            SolveResult::Unknown => "cancelled",
        },
        "won" => won,
        "conflicts" => stats.conflicts,
        "propagations" => stats.propagations,
        "restarts" => stats.restarts,
        "exported" => stats.exported_clauses,
        "imported" => stats.imported_clauses,
        "rejected" => stats.rejected_clauses,
        "elapsed_us" => started.elapsed().as_micros() as u64,
    );
}

/// Per-worker ends of the sharing mesh: the producers that broadcast a
/// worker's exports to every peer, and the consumers that drain every
/// peer's exports into that worker.
pub(crate) type MeshEnds = (Vec<Producer<SharedClause>>, Vec<Consumer<SharedClause>>);

/// Build the full N·(N−1) SPSC ring mesh (one ring per ordered pair of
/// distinct workers) and regroup the ends per worker. With `n` workers
/// the returned vector has `n` entries; entry `i` holds worker `i`'s
/// producers (feeding each peer) and consumers (fed by each peer).
pub(crate) fn ring_mesh(n: usize, capacity: usize) -> Vec<MeshEnds> {
    let mut producers: Vec<Vec<Producer<SharedClause>>> = (0..n).map(|_| Vec::new()).collect();
    let mut consumers: Vec<Vec<Consumer<SharedClause>>> = (0..n).map(|_| Vec::new()).collect();
    for (i, prods) in producers.iter_mut().enumerate() {
        for (j, cons) in consumers.iter_mut().enumerate() {
            if i != j {
                let (p, c) = spsc(capacity);
                prods.push(p);
                cons.push(c);
            }
        }
    }
    producers.into_iter().zip(consumers).collect()
}

/// Racing path: one OS thread per worker, N·(N−1) SPSC rings, atomic
/// first-to-finish election.
fn run_parallel(
    n: usize,
    num_vars: usize,
    clauses: &[Vec<Lit>],
    assumptions: &[Lit],
    budget: Budget,
    config: &PortfolioConfig,
) -> Vec<WorkerReport> {
    let election = Arc::new(Election::new());
    let sharing = config.share_lbd_max > 0;
    let channels = if sharing {
        ring_mesh(n, config.ring_capacity)
    } else {
        (0..n).map(|_| (Vec::new(), Vec::new())).collect()
    };

    thread::scope(|scope| {
        let handles: Vec<_> = channels
            .into_iter()
            .enumerate()
            .map(|(i, (prods, cons))| {
                let election = Arc::clone(&election);
                scope.spawn(move || {
                    fec_trace::set_thread_name(format!("pf-worker-{i}"));
                    let _wsp = fec_trace::span!(
                        fec_trace::Level::Trace,
                        "portfolio.worker",
                        "worker" => i,
                    );
                    let worker_start = Instant::now();
                    let (mut s, logger) = build_worker(i, num_vars, clauses, config);
                    s.set_stop_flag(election.stop_handle());
                    if sharing {
                        s.set_export_hook(
                            Box::new(move |lits, lbd| {
                                // share-traffic profile: what LBD quality
                                // actually crosses the mesh
                                fec_trace::hist!(
                                    fec_trace::Level::Debug,
                                    "portfolio.share.lbd",
                                    lbd
                                );
                                for p in &prods {
                                    p.push((lits.to_vec(), lbd));
                                }
                            }),
                            config.share_lbd_max,
                        );
                        s.set_import_hook(Box::new(move || {
                            let mut batch = Vec::new();
                            for c in &cons {
                                batch.extend(c.drain());
                            }
                            observe_import(i, batch.len());
                            batch
                        }));
                    }
                    let result = s.solve_with_budget(assumptions, budget);
                    // first verdict wins the election and cancels the
                    // rest; losers keep their stats but extract nothing
                    let won = result != SolveResult::Unknown && election.try_win(i);
                    if won {
                        fec_trace::event!(
                            fec_trace::Level::Debug,
                            "portfolio.win",
                            "worker" => i,
                            "conflicts" => s.stats().conflicts,
                        );
                    }
                    emit_worker_done(i, &s.stats(), result, won, worker_start);
                    report(&s, result, num_vars, logger.as_ref(), won)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("portfolio worker panicked"))
            .collect()
    })
}

/// Deterministic path: the same N diversified workers, run cooperatively
/// on the calling thread in fixed round-robin conflict slices, sharing
/// through the same rings between slices. Same seed ⇒ same winner, same
/// statistics, bit-for-bit — wall-clock only enters through the overall
/// timeout, which is checked *between* epochs.
fn run_round_robin(
    n: usize,
    num_vars: usize,
    clauses: &[Vec<Lit>],
    assumptions: &[Lit],
    budget: Budget,
    config: &PortfolioConfig,
) -> Vec<WorkerReport> {
    let start = Instant::now();
    let sharing = config.share_lbd_max > 0;
    let mut workers = Vec::with_capacity(n);
    let channels = if sharing {
        ring_mesh(n, config.ring_capacity)
    } else {
        (0..n).map(|_| (Vec::new(), Vec::new())).collect()
    };
    for (i, (prods, cons)) in channels.into_iter().enumerate() {
        let (mut s, logger) = build_worker(i, num_vars, clauses, config);
        if sharing {
            s.set_export_hook(
                Box::new(move |lits, lbd| {
                    for p in &prods {
                        p.push((lits.to_vec(), lbd));
                    }
                }),
                config.share_lbd_max,
            );
            s.set_import_hook(Box::new(move || {
                let mut batch = Vec::new();
                for c in &cons {
                    batch.extend(c.drain());
                }
                observe_import(i, batch.len());
                batch
            }));
        }
        workers.push((s, logger));
    }

    let slice = config.det_slice_conflicts.max(1);
    let mut spent = vec![0u64; n]; // conflicts consumed per worker
    let mut verdict: Option<(usize, SolveResult)> = None;
    'epochs: loop {
        let mut any_alive = false;
        for (i, (s, _)) in workers.iter_mut().enumerate() {
            let remaining = budget.max_conflicts.saturating_sub(spent[i]);
            if remaining == 0 {
                continue;
            }
            any_alive = true;
            let before = s.stats().conflicts;
            let r = s.solve_with_budget(
                assumptions,
                Budget {
                    max_conflicts: remaining.min(slice),
                    timeout: None,
                },
            );
            spent[i] += s.stats().conflicts - before;
            if r != SolveResult::Unknown {
                verdict = Some((i, r));
                break 'epochs;
            }
        }
        if !any_alive {
            break; // every worker exhausted its conflict budget
        }
        if let Some(t) = budget.timeout {
            if start.elapsed() >= t {
                break;
            }
        }
    }
    workers
        .into_iter()
        .enumerate()
        .map(|(i, (s, logger))| {
            let (result, won) = match verdict {
                Some((w, r)) if w == i => (r, true),
                _ => (SolveResult::Unknown, false),
            };
            report(&s, result, num_vars, logger.as_ref(), won)
        })
        .collect()
}

/// Folds the per-worker reports into the final outcome.
fn assemble(reports: Vec<WorkerReport>, wall: Duration) -> PortfolioOutcome {
    let mut stats = PortfolioStats {
        wall,
        ..PortfolioStats::default()
    };
    let mut result = SolveResult::Unknown;
    let mut model = None;
    let mut failed = Vec::new();
    let mut proof = None;
    for (i, r) in reports.into_iter().enumerate() {
        stats.total.merge(&r.stats);
        stats.workers.push(r.stats);
        // exactly one report carries the extracted answer (the CAS
        // winner; in single/deterministic mode the finishing worker)
        if r.model.is_some() || r.proof.is_some() || !r.failed_assumptions.is_empty() {
            stats.winner = Some(i);
            result = r.result;
            model = r.model;
            failed = r.failed_assumptions;
            proof = r.proof;
        } else if stats.winner.is_none() && r.result != SolveResult::Unknown {
            // winner finished without extraction (e.g. lost a CAS race
            // after another worker already answered) — keep the verdict
            result = r.result;
            stats.winner = Some(i);
        }
    }
    PortfolioOutcome {
        result,
        model,
        failed_assumptions: failed,
        stats,
        winner_proof: proof,
    }
}
