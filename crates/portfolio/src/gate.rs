//! Job hand-off for the resident warm worker pool.
//!
//! A [`Gate`] is the coordination core of `pool.rs`: one coordinator
//! thread publishes a sequence of jobs (clause-delta loads, solve
//! calls, inprocessing passes, teardown) to `n` resident workers, and
//! collects one report per worker per job. It subsumes the one-shot
//! [`crate::cancel::Election`] — each published generation is a fresh
//! election over the same slots, so the winner slot and stop flag are
//! *reused* across queries instead of reallocated.
//!
//! Protocol (verified by the model tests in `tests/model.rs`):
//!
//! 1. the coordinator waits until the previous generation is fully
//!    acknowledged ([`Gate::idle`]), then resets the winner slot and
//!    stop flag, writes the job payload, and bumps the generation
//!    counter `seq` with a `Release` store ([`Gate::publish`]);
//! 2. each worker polls `seq` with `Acquire` ([`Gate::poll`]); seeing
//!    a new generation synchronizes with the publish, so the payload
//!    *and* the relaxed resets that preceded the `Release` store are
//!    visible — the worker reads the job ([`Gate::with_job`]), works,
//!    optionally races [`Gate::try_win`], and then writes its report
//!    slot and acknowledges with a `Release` `fetch_add` on the
//!    cumulative `acks` counter ([`Gate::submit`]);
//! 3. the coordinator's `Acquire` load of `acks` in [`Gate::idle`]
//!    synchronizes with every worker's `Release` increment (each
//!    increment heads its own release sequence), so once
//!    `acks == n · seq` all `n` report slots are safely readable and
//!    the payload slot is exclusively writable again.
//!
//! The reset in step 1 is the subtle part: the winner/stop writes can
//! be `Relaxed` *only because* they are ordered before the `Release`
//! store of `seq` and no worker touches the slots between its ack and
//! its next successful poll. The mutation tests in `tests/model.rs`
//! downgrade the `Acquire` on the ack path to `Relaxed` and show the
//! checker catches the resulting race on the report slot.

use crate::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use crate::sync::cell::UnsafeCell;

#[cfg(not(feature = "fec_check"))]
use std::sync::Arc;

/// Sentinel stored in the winner slot while a generation is undecided.
const NO_WINNER: usize = usize::MAX;

/// Reusable many-generation job gate between one coordinator and `n`
/// resident workers.
pub struct Gate<J, R> {
    n: usize,
    /// Generation counter. Written only by the coordinator
    /// (`Release`), polled by workers (`Acquire`). Generation `g` is
    /// the `g`-th published job; 0 means nothing published yet.
    seq: AtomicUsize,
    /// Cumulative acknowledgement count across all generations;
    /// generation `g` is complete when `acks == n * g`.
    acks: AtomicUsize,
    /// Winner slot for the current generation's election.
    winner: AtomicUsize,
    #[cfg(not(feature = "fec_check"))]
    stop: Arc<AtomicBool>,
    #[cfg(feature = "fec_check")]
    stop: AtomicBool,
    /// The published job. Written by the coordinator while idle, read
    /// shared by workers between poll and ack.
    job: UnsafeCell<Option<J>>,
    /// One report slot per worker. Written by its worker before the
    /// ack, read by the coordinator after `idle()`.
    reports: Box<[UnsafeCell<Option<R>>]>,
}

// Safety: the generation protocol above partitions every access to
// the `UnsafeCell`s. The coordinator only writes `job` / reads
// `reports` while `idle()` holds (its `Acquire` on `acks` ordering it
// after every worker's `Release` ack); worker `i` only reads `job` and
// writes `reports[i]` between an `Acquire` poll of a fresh generation
// and its own ack. `J: Sync` because all workers read the payload
// concurrently; `R: Send` because reports move worker → coordinator.
unsafe impl<J: Send + Sync, R: Send> Sync for Gate<J, R> {}
unsafe impl<J: Send, R: Send> Send for Gate<J, R> {}

impl<J, R> Gate<J, R> {
    /// A gate for `n ≥ 1` workers, no job published.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "a pool needs at least one worker");
        Gate {
            n,
            seq: AtomicUsize::new(0),
            acks: AtomicUsize::new(0),
            winner: AtomicUsize::new(NO_WINNER),
            #[cfg(not(feature = "fec_check"))]
            stop: Arc::new(AtomicBool::new(false)),
            #[cfg(feature = "fec_check")]
            stop: AtomicBool::new(false),
            job: UnsafeCell::new(None),
            reports: (0..n).map(|_| UnsafeCell::new(None)).collect(),
        }
    }

    /// Number of resident workers this gate coordinates.
    pub fn workers(&self) -> usize {
        self.n
    }

    /// Coordinator: whether the latest generation (if any) has been
    /// acknowledged by every worker. The `Acquire` here is what makes
    /// the workers' report writes — and their last reads of the job
    /// slot — visible and ordered before any subsequent publish.
    pub fn idle(&self) -> bool {
        // `seq` has a single writer (the coordinator itself), so its
        // own Relaxed read is exact; `acks` carries the edge.
        let g = self.seq.load(Ordering::Relaxed);
        self.acks.load(Ordering::Acquire) == self.n * g
    }

    /// Coordinator: publishes the next job. Panics if the previous
    /// generation is still in flight.
    pub fn publish(&self, job: J) {
        assert!(self.idle(), "publish while a generation is in flight");
        // Reset-for-reuse. Relaxed suffices: both stores are ordered
        // before the Release store of `seq` below, so any worker that
        // observes the new generation also observes a fresh election;
        // and `idle()` just proved no worker can still be looking at
        // the previous one.
        self.winner.store(NO_WINNER, Ordering::Relaxed);
        self.stop_ref().store(false, Ordering::Relaxed);
        self.job.with_mut(|p| unsafe { *p = Some(job) });
        let g = self.seq.load(Ordering::Relaxed);
        self.seq.store(g + 1, Ordering::Release);
    }

    /// Worker: the current generation if it differs from `last_seen`.
    /// A `Some(g)` return synchronizes with the publish of `g`.
    pub fn poll(&self, last_seen: usize) -> Option<usize> {
        let g = self.seq.load(Ordering::Acquire);
        (g != last_seen).then_some(g)
    }

    /// Worker: shared read access to the published job. Must only be
    /// called between a successful [`Gate::poll`] and the matching
    /// [`Gate::submit`].
    pub fn with_job<T>(&self, f: impl FnOnce(&J) -> T) -> T {
        self.job.with(|p| {
            // Safety: the poll's Acquire ordered this read after the
            // coordinator's payload write, and the coordinator will
            // not touch the slot again until this worker acks.
            f(unsafe { (*p).as_ref().expect("no job published") })
        })
    }

    /// Worker: deposit the report for the current generation and
    /// acknowledge it. After this the worker must not touch the job
    /// or its report slot until the next successful poll.
    pub fn submit(&self, worker: usize, report: R) {
        self.reports[worker].with_mut(|p| unsafe { *p = Some(report) });
        // Release: heads a release sequence on `acks`, so the
        // coordinator's Acquire load sees the report write above no
        // matter how the other workers' increments interleave.
        self.acks.fetch_add(1, Ordering::Release);
    }

    /// Worker: race to own the current generation's verdict. Exactly
    /// one caller per generation wins; the winner raises the stop
    /// flag, cancelling the other workers' solvers.
    pub fn try_win(&self, worker: usize) -> bool {
        debug_assert_ne!(worker, NO_WINNER, "worker id collides with the sentinel");
        let won = self
            .winner
            .compare_exchange(NO_WINNER, worker, Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        if won {
            self.stop_ref().store(true, Ordering::Release);
        }
        won
    }

    /// The current generation's winning worker, once decided.
    pub fn winner(&self) -> Option<usize> {
        let w = self.winner.load(Ordering::Acquire);
        (w != NO_WINNER).then_some(w)
    }

    /// Whether the current generation's election has been decided and
    /// cancellation is under way.
    pub fn stop_requested(&self) -> bool {
        self.stop_ref().load(Ordering::Acquire)
    }

    /// The stop flag in the form [`fec_sat::Solver::set_stop_flag`]
    /// expects; installed once per resident worker at pool start and
    /// valid across every subsequent generation.
    #[cfg(not(feature = "fec_check"))]
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Coordinator: drain all report slots. Must only be called while
    /// [`Gate::idle`] — after a published generation this yields one
    /// `Some` per worker.
    pub fn take_reports(&self) -> Vec<Option<R>> {
        debug_assert!(self.idle(), "take_reports while a generation is in flight");
        self.reports
            .iter()
            // Safety: idle() means every worker acked; the Acquire in
            // idle() ordered their report writes before these reads,
            // and no worker writes again until the next publish.
            .map(|c| c.with_mut(|p| unsafe { (*p).take() }))
            .collect()
    }

    #[cfg(not(feature = "fec_check"))]
    fn stop_ref(&self) -> &AtomicBool {
        &self.stop
    }

    #[cfg(feature = "fec_check")]
    fn stop_ref(&self) -> &AtomicBool {
        &self.stop
    }
}

#[cfg(all(test, not(feature = "fec_check")))]
mod tests {
    use super::*;

    #[test]
    fn generations_reuse_winner_and_stop() {
        let g: Gate<u32, u32> = Gate::new(2);
        assert!(g.idle());
        g.publish(7);
        assert!(!g.idle());
        assert_eq!(g.poll(0), Some(1));
        assert_eq!(g.poll(1), None, "same generation polls as unchanged");
        assert_eq!(g.with_job(|j| *j), 7);
        assert!(g.try_win(1));
        assert!(!g.try_win(0), "second claim must lose");
        assert!(g.stop_requested());
        g.submit(0, 10);
        g.submit(1, 11);
        assert!(g.idle());
        assert_eq!(g.take_reports(), vec![Some(10), Some(11)]);
        assert_eq!(g.winner(), Some(1));

        // second generation: fresh election over the same slots
        g.publish(8);
        assert_eq!(g.poll(1), Some(2));
        assert!(!g.stop_requested(), "stop flag reset on publish");
        assert_eq!(g.winner(), None, "winner slot reset on publish");
        assert!(g.try_win(0));
        g.submit(0, 20);
        g.submit(1, 21);
        assert_eq!(g.take_reports(), vec![Some(20), Some(21)]);
        assert_eq!(g.winner(), Some(0));
    }

    #[test]
    #[should_panic(expected = "in flight")]
    fn publish_while_in_flight_panics() {
        let g: Gate<u32, u32> = Gate::new(1);
        g.publish(1);
        g.publish(2);
    }

    #[test]
    fn threaded_session_across_three_generations() {
        let g: std::sync::Arc<Gate<u32, u32>> = std::sync::Arc::new(Gate::new(4));
        std::thread::scope(|s| {
            for w in 0..4 {
                let g = std::sync::Arc::clone(&g);
                s.spawn(move || {
                    let mut last = 0;
                    loop {
                        let Some(seen) = g.poll(last) else {
                            std::thread::yield_now();
                            continue;
                        };
                        last = seen;
                        let job = g.with_job(|j| *j);
                        if job == u32::MAX {
                            g.submit(w, 0);
                            break;
                        }
                        g.try_win(w);
                        g.submit(w, job + w as u32);
                    }
                });
            }
            for gen in 0..3u32 {
                while !g.idle() {
                    std::thread::yield_now();
                }
                g.publish(100 * gen);
                while !g.idle() {
                    std::thread::yield_now();
                }
                let reports = g.take_reports();
                for (w, r) in reports.iter().enumerate() {
                    assert_eq!(*r, Some(100 * gen + w as u32));
                }
                assert!(g.winner().is_some());
            }
            while !g.idle() {
                std::thread::yield_now();
            }
            g.publish(u32::MAX);
        });
    }
}
