//! Differential validation of the portfolio against the reference DPLL
//! oracle, plus determinism and proof-certification checks — for both
//! the one-shot engine and the resident warm [`Pool`].

// the solve engine is compiled out under the model-checking feature
#![cfg(not(feature = "fec_check"))]

use fec_portfolio::{solve, Pool, PortfolioConfig};
use fec_sat::{reference, Budget, Lit, SolveResult, SolverStats, Var};

/// Deterministic xorshift64* for instance generation (no external
/// randomness: the 200 instances are the same on every run).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random CNF over `num_vars` variables: `num_clauses` clauses of
/// width 2–4 with distinct variables per clause and random polarities.
fn random_cnf(rng: &mut Rng, num_vars: usize, num_clauses: usize) -> Vec<Vec<Lit>> {
    (0..num_clauses)
        .map(|_| {
            let width = 2 + rng.below(3) as usize;
            let mut vars = Vec::with_capacity(width);
            while vars.len() < width.min(num_vars) {
                let v = rng.below(num_vars as u64) as usize;
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
            vars.into_iter()
                .map(|v| Lit::with_sign(Var::from_index(v), rng.below(2) == 0))
                .collect()
        })
        .collect()
}

#[test]
fn portfolio_matches_reference_on_200_random_cnfs() {
    let mut rng = Rng(0x5EED_CAFE);
    let config = PortfolioConfig {
        certify: true,
        ..PortfolioConfig::with_jobs(4)
    };
    let (mut sat_seen, mut unsat_seen) = (0u32, 0u32);
    for instance in 0..200 {
        let num_vars = 6 + rng.below(12) as usize;
        // clause/variable ratio around the 3-SAT phase transition, so
        // both verdicts occur often
        let num_clauses = (num_vars as f64 * 3.8) as usize;
        let clauses = random_cnf(&mut rng, num_vars, num_clauses);
        let expected = reference::solve(num_vars, &clauses);
        let out = solve(num_vars, &clauses, &[], Budget::unlimited(), &config);
        match (&expected, out.result) {
            (Some(_), SolveResult::Sat) => {
                sat_seen += 1;
                // the portfolio's model must satisfy every clause
                let model: Vec<bool> = (0..num_vars)
                    .map(|v| out.value(Var::from_index(v)).unwrap_or(false))
                    .collect();
                assert!(
                    reference::check_model(&clauses, &model),
                    "instance {instance}: winning model does not satisfy the formula"
                );
            }
            (None, SolveResult::Unsat) => {
                unsat_seen += 1;
                // the winning worker's proof must certify the
                // refutation stand-alone
                let steps = out
                    .winner_proof
                    .as_ref()
                    .expect("certifying portfolio returns the winner's proof");
                let mut checker = fec_drat::Checker::new();
                checker
                    .process_all(steps)
                    .unwrap_or_else(|e| panic!("instance {instance}: proof rejected: {e}"));
                assert!(
                    checker.is_refuted() || checker.is_rup(&[]),
                    "instance {instance}: proof does not refute the formula"
                );
            }
            (e, r) => panic!("instance {instance}: reference {e:?} but portfolio {r:?}"),
        }
        assert_eq!(out.stats.workers.len(), 4);
        assert!(out.stats.winner.is_some());
    }
    // the generator must exercise both verdicts heavily
    assert!(sat_seen >= 30, "only {sat_seen} SAT instances");
    assert!(unsat_seen >= 30, "only {unsat_seen} UNSAT instances");
}

#[test]
fn deterministic_mode_reproduces_winner_and_stats() {
    let mut rng = Rng(0xD37E_2217);
    let config = PortfolioConfig {
        deterministic: true,
        det_slice_conflicts: 50,
        seed: 7,
        ..PortfolioConfig::with_jobs(4)
    };
    for _ in 0..10 {
        let num_vars = 10 + rng.below(8) as usize;
        let clauses = random_cnf(&mut rng, num_vars, (num_vars as f64 * 4.0) as usize);
        let a = solve(num_vars, &clauses, &[], Budget::unlimited(), &config);
        let b = solve(num_vars, &clauses, &[], Budget::unlimited(), &config);
        assert_eq!(a.result, b.result);
        assert_eq!(a.stats.winner, b.stats.winner);
        assert_eq!(a.model, b.model);
        for (wa, wb) in a.stats.workers.iter().zip(&b.stats.workers) {
            assert_eq!(wa.conflicts, wb.conflicts);
            assert_eq!(wa.propagations, wb.propagations);
            assert_eq!(wa.decisions, wb.decisions);
            assert_eq!(wa.imported_clauses, wb.imported_clauses);
        }
    }
}

/// One query's complete observable surface: verdict, winner, model,
/// shipped-clause counter, and every per-worker statistics delta.
type QueryFingerprint = (
    SolveResult,
    Option<usize>,
    Option<Vec<Option<bool>>>,
    u64,
    Vec<SolverStats>,
);

/// Runs one fixed warm-pool session — an incremental CEGIS-shaped
/// workload of loads, clause-delta solves, and assumption-only solves
/// over deterministic random CNFs — and fingerprints every query.
fn deterministic_pool_session(config: &PortfolioConfig) -> Vec<QueryFingerprint> {
    let mut rng = Rng(0x1C0F_FEE5);
    let mut pool = Pool::new(config);
    let mut fingerprints = Vec::new();
    let num_vars = 12;
    // a satisfiable-ish base load, then five rounds of delta + solve
    pool.load(num_vars, random_cnf(&mut rng, num_vars, 20));
    for round in 0..5 {
        let delta = random_cnf(&mut rng, num_vars, 6);
        let assumptions = if round % 2 == 1 {
            vec![Lit::with_sign(
                Var::from_index(rng.below(num_vars as u64) as usize),
                rng.below(2) == 0,
            )]
        } else {
            Vec::new()
        };
        let out = pool.solve(num_vars, delta, assumptions, Budget::unlimited());
        fingerprints.push((
            out.result,
            out.stats.winner,
            out.model.clone(),
            out.stats.shipped_clauses,
            out.stats.workers.clone(),
        ));
        if out.result == SolveResult::Unsat && out.failed_assumptions.is_empty() {
            break; // formula refuted outright; later queries are moot
        }
    }
    fingerprints
}

#[test]
fn warm_pool_deterministic_mode_is_bit_identical_across_runs() {
    // three independent pools, same seed ⇒ the same winners, models,
    // shipped-clause counters, and per-worker stats deltas, query by
    // query — the reproducibility contract the CI determinism job pins
    let config = PortfolioConfig {
        deterministic: true,
        det_slice_conflicts: 50,
        seed: 11,
        ..PortfolioConfig::with_jobs(3)
    };
    let runs: Vec<_> = (0..3)
        .map(|_| deterministic_pool_session(&config))
        .collect();
    assert!(!runs[0].is_empty());
    assert_eq!(runs[0], runs[1], "run 2 diverged from run 1");
    assert_eq!(runs[0], runs[2], "run 3 diverged from run 1");
}

#[test]
fn warm_pool_matches_reference_on_incremental_sessions() {
    // 30 sessions × 4 growing queries: at every step the warm pool's
    // verdict must match the reference oracle solving the accumulated
    // formula from scratch, and SAT models must satisfy every clause
    let mut rng = Rng(0xF001_FEC2);
    let config = PortfolioConfig::with_jobs(2);
    for session in 0..30 {
        let num_vars = 6 + rng.below(8) as usize;
        let mut pool = Pool::new(&config);
        let mut accumulated: Vec<Vec<Lit>> = Vec::new();
        for step in 0..4 {
            let width = 4 + rng.below(6) as usize;
            let delta = random_cnf(&mut rng, num_vars, width);
            accumulated.extend(delta.iter().cloned());
            let expected = reference::solve(num_vars, &accumulated).is_some();
            let out = pool.solve(num_vars, delta, Vec::new(), Budget::unlimited());
            match out.result {
                SolveResult::Sat => {
                    assert!(expected, "session {session} step {step}: false SAT");
                    let model: Vec<bool> = (0..num_vars)
                        .map(|v| out.value(Var::from_index(v)).unwrap_or(false))
                        .collect();
                    assert!(
                        reference::check_model(&accumulated, &model),
                        "session {session} step {step}: warm model violates a clause"
                    );
                }
                SolveResult::Unsat => {
                    assert!(!expected, "session {session} step {step}: false UNSAT");
                    break; // monotone: stays UNSAT forever
                }
                SolveResult::Unknown => panic!("session {session} step {step}: Unknown"),
            }
        }
    }
}

#[test]
fn deterministic_mode_agrees_with_reference() {
    let mut rng = Rng(0xBEEF_0001);
    let config = PortfolioConfig {
        deterministic: true,
        det_slice_conflicts: 20,
        ..PortfolioConfig::with_jobs(3)
    };
    for instance in 0..40 {
        let num_vars = 6 + rng.below(10) as usize;
        let clauses = random_cnf(&mut rng, num_vars, (num_vars as f64 * 3.8) as usize);
        let expected = reference::solve(num_vars, &clauses).is_some();
        let out = solve(num_vars, &clauses, &[], Budget::unlimited(), &config);
        let got = match out.result {
            SolveResult::Sat => true,
            SolveResult::Unsat => false,
            SolveResult::Unknown => panic!("instance {instance}: unexpected Unknown"),
        };
        assert_eq!(got, expected, "instance {instance}");
    }
}

#[test]
fn failed_assumptions_from_the_winner() {
    // x0 ∧ (¬x0 ∨ x1) with assumption ¬x1 is UNSAT; the failed subset
    // must mention the assumption ¬x1
    let v = |i| Var::from_index(i);
    let clauses = vec![vec![Lit::pos(v(0))], vec![Lit::neg(v(0)), Lit::pos(v(1))]];
    let out = solve(
        2,
        &clauses,
        &[Lit::neg(v(1))],
        Budget::unlimited(),
        &PortfolioConfig::with_jobs(4),
    );
    assert_eq!(out.result, SolveResult::Unsat);
    assert!(
        out.failed_assumptions.contains(&Lit::neg(v(1))),
        "failed set {:?}",
        out.failed_assumptions
    );
    // dropping the assumption makes it satisfiable again
    let out = solve(
        2,
        &clauses,
        &[],
        Budget::unlimited(),
        &PortfolioConfig::with_jobs(4),
    );
    assert_eq!(out.result, SolveResult::Sat);
    assert_eq!(out.value(v(0)), Some(true));
    assert_eq!(out.value(v(1)), Some(true));
}

#[test]
fn budget_exhaustion_returns_unknown() {
    // a hard pigeonhole instance with a 1-conflict budget cannot finish
    let (num_vars, clauses) = pigeonhole(8, 7);
    let out = solve(
        num_vars,
        &clauses,
        &[],
        Budget {
            max_conflicts: 1,
            timeout: None,
        },
        &PortfolioConfig::with_jobs(4),
    );
    assert_eq!(out.result, SolveResult::Unknown);
    assert!(out.stats.winner.is_none());
    assert!(out.model.is_none());
}

#[test]
fn clause_sharing_is_observed_on_hard_unsat() {
    // pigeonhole generates many low-LBD clauses; with 4 workers some
    // imports should occur (not guaranteed per-worker, but across the
    // portfolio on an instance this hard it always happens in practice)
    let (num_vars, clauses) = pigeonhole(9, 8);
    let out = solve(
        num_vars,
        &clauses,
        &[],
        Budget::unlimited(),
        &PortfolioConfig::with_jobs(4),
    );
    assert_eq!(out.result, SolveResult::Unsat);
    assert!(
        out.stats.total.exported_clauses > 0,
        "no clauses exported: {:?}",
        out.stats.total
    );
}

/// PHP(n, m): n pigeons into m holes — UNSAT when n > m.
fn pigeonhole(pigeons: usize, holes: usize) -> (usize, Vec<Vec<Lit>>) {
    let var = |p: usize, h: usize| Var::from_index(p * holes + h);
    let mut clauses = Vec::new();
    for p in 0..pigeons {
        clauses.push((0..holes).map(|h| Lit::pos(var(p, h))).collect());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                clauses.push(vec![Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
            }
        }
    }
    (pigeons * holes, clauses)
}
