//! Model-checking the portfolio's lock-free core with `fec-check`.
//!
//! Compiled only with `--features fec_check`, which swaps the `std`
//! primitives inside `ring.rs` and `cancel.rs` for the checker's
//! instrumented shims — the code under test here is the *production*
//! ring and election, not a copy. Each test explores every thread
//! interleaving within the preemption bound and fails on any data
//! race, assertion violation, deadlock, or livelock, printing the
//! offending schedule.
//!
//! The `mutation` module proves the checker has teeth: a one-slot
//! replica of the ring's publication protocol, with the orderings as
//! parameters, must pass with `Release`/`Acquire` and be *reported as
//! a race* with either side downgraded to `Relaxed` — the exact bug a
//! refactor could silently introduce and example-based tests on x86
//! would essentially never catch.

#![cfg(feature = "fec_check")]

use fec_check::{explore, CheckError, Config};
use fec_portfolio::{spsc, Election, Gate};
use std::sync::Arc;

/// Exploration budget for the ring models. The schedule cap makes an
/// interleaving explosion a loud failure instead of a CI hang; tests
/// log the count so growth is visible in CI output.
fn cfg(preemptions: usize) -> Config {
    Config {
        preemptions,
        max_schedules: 150_000,
        ..Config::default()
    }
}

// ---------------------------------------------------------------- ring

#[test]
fn spsc_handoff_exhaustive() {
    // two pushes racing two pops (plus a post-join drain) through a
    // capacity-2 ring: every interleaving must be race-free, FIFO, and
    // lose nothing (the ring never fills here)
    let report = explore(&cfg(2), || {
        let (p, c) = spsc::<u32>(2);
        let producer = fec_check::thread::spawn(move || {
            assert!(p.push(1), "2 pushes into capacity 2 cannot drop");
            assert!(p.push(2));
        });
        let mut got = Vec::new();
        for _ in 0..2 {
            got.extend(c.pop());
        }
        producer.join();
        got.extend(c.drain());
        assert_eq!(got, vec![1, 2], "FIFO, nothing lost");
    })
    .expect("SPSC handoff must be race-free");
    eprintln!(
        "spsc_handoff_exhaustive: {} schedules explored (+{} pruned)",
        report.schedules, report.pruned
    );
}

#[test]
fn spsc_wraparound_and_full_ring_exhaustive() {
    // four pushes through a capacity-2 ring force index wraparound and
    // (on schedules where the consumer lags) full-ring drops; the
    // received values must always be a strictly increasing subsequence
    // and exactly the non-dropped pushes must arrive
    let report = explore(&cfg(2), || {
        let (p, c) = spsc::<u32>(2);
        let producer = fec_check::thread::spawn(move || {
            let mut sent = 0u32;
            for i in 0..4 {
                if p.push(i) {
                    sent += 1;
                }
            }
            sent
        });
        let mut got = Vec::new();
        for _ in 0..3 {
            got.extend(c.pop());
        }
        let sent = producer.join();
        got.extend(c.drain());
        assert_eq!(got.len() as u32, sent, "every accepted push arrives");
        assert!(
            got.windows(2).all(|w| w[0] < w[1]),
            "received subsequence keeps FIFO order: {got:?}"
        );
    })
    .expect("wraparound under concurrency must be race-free");
    eprintln!(
        "spsc_wraparound: {} schedules explored (+{} pruned)",
        report.schedules, report.pruned
    );
}

#[test]
fn spsc_minimum_capacity_exhaustive() {
    // capacity request 1 rounds up to the minimum of 2; the tightest
    // ring gets the most slot reuse per op, so hammer it
    let report = explore(&cfg(3), || {
        let (p, c) = spsc::<u32>(1);
        let producer = fec_check::thread::spawn(move || {
            let a = p.push(10);
            let b = p.push(20);
            (a, b)
        });
        let first = c.pop();
        let (a, b) = producer.join();
        assert!(a && b, "2 pushes fit the rounded-up capacity");
        let mut got: Vec<u32> = first.into_iter().collect();
        got.extend(c.drain());
        assert_eq!(got, vec![10, 20]);
    })
    .expect("minimum-capacity ring must be race-free");
    eprintln!(
        "spsc_minimum_capacity: {} schedules explored (+{} pruned)",
        report.schedules, report.pruned
    );
}

// ------------------------------------------------------------ election

#[test]
fn winner_election_exhaustive() {
    // three workers race to finish: exactly one may win, the stop flag
    // must be up afterwards, and the recorded winner must be a worker
    // that actually reported a win
    let report = explore(&cfg(3), || {
        let election = Arc::new(Election::new());
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let e = Arc::clone(&election);
                fec_check::thread::spawn(move || e.try_win(i))
            })
            .collect();
        let wins: Vec<bool> = handles.into_iter().map(|h| h.join()).collect();
        assert_eq!(
            wins.iter().filter(|&&w| w).count(),
            1,
            "exactly one worker wins: {wins:?}"
        );
        let w = election.winner().expect("a winner must be recorded");
        assert!(wins[w], "recorded winner {w} must have won its CAS");
        assert!(
            election.stop_requested(),
            "the winner must raise the stop flag before returning"
        );
    })
    .expect("winner election must be race-free");
    eprintln!(
        "winner_election: {} schedules explored (+{} pruned)",
        report.schedules, report.pruned
    );
}

#[test]
fn election_publishes_winner_report() {
    // the protocol the engine relies on: the winner writes its report
    // (modeled as an UnsafeCell) *before* try_win; any thread that
    // subsequently observes stop_requested() may read it. This pins
    // the AcqRel CAS + Release store to an actual data-publication
    // obligation, not just flag semantics.
    let report = explore(&cfg(2), || {
        let election = Arc::new(Election::new());
        let answer = Arc::new(fec_check::cell::UnsafeCell::new(0u32));
        let (e, a) = (Arc::clone(&election), Arc::clone(&answer));
        let worker = fec_check::thread::spawn(move || {
            a.with_mut(|p| unsafe { *p = 42 });
            assert!(e.try_win(0));
        });
        if election.stop_requested() {
            let v = answer.with(|p| unsafe { *p });
            assert_eq!(v, 42, "observing stop must imply seeing the answer");
        }
        worker.join();
    })
    .expect("winner publication must be race-free");
    eprintln!(
        "election_publishes_report: {} schedules explored (+{} pruned)",
        report.schedules, report.pruned
    );
}

// ----------------------------------------------------- warm-pool gate

#[test]
fn pool_gate_handoff_reuse_and_teardown_exhaustive() {
    // the warm pool's whole lifecycle on the *production* Gate: a
    // published generation raced by two workers, slot reuse for a
    // second generation after a win (winner + stop flag reset at
    // publish), and a final teardown generation. The coordinator reads
    // the report slots through the acks Acquire edge *without joining
    // first* whenever a schedule allows it — that unjoined read is
    // exactly what the pool's wait_idle relies on.
    let report = explore(&cfg(2), || {
        let gate: Arc<Gate<u32, u32>> = Arc::new(Gate::new(2));

        // generation 1: publication + election
        gate.publish(10);
        let handles: Vec<_> = (0..2u32)
            .map(|w| {
                let g = Arc::clone(&gate);
                fec_check::thread::spawn(move || {
                    let gen = g.poll(0).expect("published before spawn");
                    assert_eq!(gen, 1);
                    let job = g.with_job(|j| *j);
                    assert_eq!(job, 10, "payload published with the generation");
                    let won = g.try_win(w as usize);
                    g.submit(w as usize, job + w);
                    won
                })
            })
            .collect();
        let early = gate.idle();
        if early {
            // both acks observed before any join: the Release
            // fetch_adds alone must make the report writes readable
            assert_eq!(gate.take_reports(), vec![Some(10), Some(11)]);
        }
        let wins: Vec<bool> = handles.into_iter().map(|h| h.join()).collect();
        assert_eq!(
            wins.iter().filter(|&&w| w).count(),
            1,
            "one winner: {wins:?}"
        );
        assert!(gate.stop_requested(), "winner raised the stop flag");
        assert!(gate.idle());
        if !early {
            assert_eq!(gate.take_reports(), vec![Some(10), Some(11)]);
        }

        // generation 2: reuse after a win — publish must reset the
        // election state before any worker sees the new generation
        gate.publish(20);
        assert!(!gate.stop_requested(), "stop flag reset on publish");
        assert_eq!(gate.winner(), None, "winner slot reset on publish");
        let handles: Vec<_> = (0..2u32)
            .map(|w| {
                let g = Arc::clone(&gate);
                fec_check::thread::spawn(move || {
                    let gen = g.poll(1).expect("second generation visible");
                    assert_eq!(gen, 2);
                    let job = g.with_job(|j| *j);
                    assert_eq!(job, 20, "stale payload must not survive reuse");
                    let won = g.try_win(w as usize);
                    g.submit(w as usize, job + w);
                    won
                })
            })
            .collect();
        let wins: Vec<bool> = handles.into_iter().map(|h| h.join()).collect();
        assert_eq!(wins.iter().filter(|&&w| w).count(), 1, "fresh election");
        assert_eq!(gate.take_reports(), vec![Some(20), Some(21)]);

        // generation 3: teardown — workers ack without touching the
        // payload and exit; the coordinator may then drop the gate
        gate.publish(u32::MAX);
        let handles: Vec<_> = (0..2u32)
            .map(|w| {
                let g = Arc::clone(&gate);
                fec_check::thread::spawn(move || {
                    assert_eq!(g.poll(2), Some(3));
                    g.submit(w as usize, 0);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert!(gate.idle(), "teardown generation fully acknowledged");
    })
    .expect("pool gate lifecycle must be race-free");
    eprintln!(
        "pool_gate_handoff: {} schedules explored (+{} pruned)",
        report.schedules, report.pruned
    );
}

// ---------------------------------------------- mutation tests (teeth)

/// One-slot replica of `ring.rs`'s publication protocol with the
/// producer-side store and consumer-side load orderings as parameters.
/// Mirrors `Producer::push` (slot write, then tail store) and
/// `Consumer::pop` (tail load, then slot take) literally.
mod mutation {
    use fec_check::cell::UnsafeCell;
    use fec_check::sync::atomic::{AtomicUsize, Ordering};
    use fec_check::{explore, CheckError, Report};
    use std::sync::Arc;

    pub fn publication(store_ord: Ordering, load_ord: Ordering) -> Result<Report, CheckError> {
        explore(&super::cfg(2), move || {
            let slot = Arc::new(UnsafeCell::new(None::<u32>));
            let tail = Arc::new(AtomicUsize::new(0));
            let (s, t) = (Arc::clone(&slot), Arc::clone(&tail));
            let producer = fec_check::thread::spawn(move || {
                // push: write the slot, then publish it
                s.with_mut(|p| unsafe { *p = Some(7) });
                t.store(1, store_ord);
            });
            // pop: check publication, then take the slot
            if tail.load(load_ord) == 1 {
                let got = slot.with_mut(|p| unsafe { (*p).take() });
                assert_eq!(got, Some(7), "published slot must hold the item");
            }
            producer.join();
        })
    }
}

#[test]
fn correct_orderings_verify_clean() {
    let report = mutation::publication(
        fec_check::sync::atomic::Ordering::Release,
        fec_check::sync::atomic::Ordering::Acquire,
    )
    .expect("the ring's actual Release/Acquire pair is race-free");
    assert!(report.schedules > 1);
}

#[test]
fn release_store_downgraded_to_relaxed_is_a_race() {
    let err = mutation::publication(
        fec_check::sync::atomic::Ordering::Relaxed, // MUTATION: was Release
        fec_check::sync::atomic::Ordering::Acquire,
    )
    .expect_err("a relaxed publish store must be reported");
    assert!(
        matches!(err, CheckError::Race { .. }),
        "expected a data race, got: {err}"
    );
    eprintln!("detected as required: {err}");
}

#[test]
fn acquire_load_downgraded_to_relaxed_is_a_race() {
    let err = mutation::publication(
        fec_check::sync::atomic::Ordering::Release,
        fec_check::sync::atomic::Ordering::Relaxed, // MUTATION: was Acquire
    )
    .expect_err("a relaxed consume load must be reported");
    assert!(
        matches!(err, CheckError::Race { .. }),
        "expected a data race, got: {err}"
    );
    eprintln!("detected as required: {err}");
}

#[test]
fn head_release_downgraded_to_relaxed_is_a_race() {
    // the second Acquire/Release pair in the ring: the consumer's head
    // store returns slot ownership to the producer for wraparound
    // reuse; downgrade it and the producer's overwrite races the
    // consumer's take
    use fec_check::cell::UnsafeCell;
    use fec_check::sync::atomic::{AtomicUsize, Ordering};

    let run = |head_store: Ordering| {
        explore(&cfg(2), move || {
            let slot = Arc::new(UnsafeCell::new(Some(1u32))); // pre-filled, published
            let head = Arc::new(AtomicUsize::new(0));
            let (s, h) = (Arc::clone(&slot), Arc::clone(&head));
            let consumer = fec_check::thread::spawn(move || {
                let got = s.with_mut(|p| unsafe { (*p).take() });
                assert_eq!(got, Some(1));
                h.store(1, head_store);
            });
            // producer side of push after a full ring: reuse the slot
            // only once the consumer returned it
            if head.load(Ordering::Acquire) == 1 {
                slot.with_mut(|p| unsafe { *p = Some(2) });
            }
            consumer.join();
        })
    };
    run(Ordering::Release).expect("head handback with Release is race-free");
    let err = run(Ordering::Relaxed).expect_err("relaxed head handback must race");
    assert!(matches!(err, CheckError::Race { .. }), "got: {err}");
}

/// One-worker replica of the Gate's ack/reset path with the orderings
/// as parameters. Mirrors `Gate::submit` (report write, then `Release`
/// fetch_add on `acks`) and the coordinator's `idle()`-guarded reuse
/// (`Acquire` load of `acks`, then drain the report slot and overwrite
/// it for the next generation) literally.
mod gate_mutation {
    use fec_check::cell::UnsafeCell;
    use fec_check::sync::atomic::{AtomicUsize, Ordering};
    use fec_check::{explore, CheckError, Report};
    use std::sync::Arc;

    pub fn reset_path(ack_ord: Ordering, idle_ord: Ordering) -> Result<Report, CheckError> {
        explore(&super::cfg(2), move || {
            let report = Arc::new(UnsafeCell::new(None::<u32>));
            let acks = Arc::new(AtomicUsize::new(0));
            let (r, a) = (Arc::clone(&report), Arc::clone(&acks));
            let worker = fec_check::thread::spawn(move || {
                // submit: deposit the report, then acknowledge
                r.with_mut(|p| unsafe { *p = Some(7) });
                a.fetch_add(1, ack_ord);
            });
            // coordinator reset path: once idle, drain the report and
            // reuse the slot for the next generation's publish
            if acks.load(idle_ord) == 1 {
                let got = report.with_mut(|p| unsafe { (*p).take() });
                assert_eq!(got, Some(7), "ack implies the report is visible");
                report.with_mut(|p| unsafe { *p = None }); // slot reused
            }
            worker.join();
        })
    }
}

#[test]
fn gate_reset_path_verifies_clean() {
    let report = gate_mutation::reset_path(
        fec_check::sync::atomic::Ordering::Release,
        fec_check::sync::atomic::Ordering::Acquire,
    )
    .expect("the Gate's actual Release/Acquire ack pair is race-free");
    assert!(report.schedules > 1);
}

#[test]
fn gate_idle_acquire_downgraded_to_relaxed_is_a_race() {
    // the ISSUE-mandated mutation: the coordinator polls acks with
    // Relaxed instead of Acquire before reusing the report slot — the
    // drain/overwrite now races the worker's report write
    let err = gate_mutation::reset_path(
        fec_check::sync::atomic::Ordering::Release,
        fec_check::sync::atomic::Ordering::Relaxed, // MUTATION: was Acquire
    )
    .expect_err("a relaxed idle poll must be reported");
    assert!(
        matches!(err, CheckError::Race { .. }),
        "expected a data race, got: {err}"
    );
    eprintln!("detected as required: {err}");
}

#[test]
fn gate_ack_release_downgraded_to_relaxed_is_a_race() {
    let err = gate_mutation::reset_path(
        fec_check::sync::atomic::Ordering::Relaxed, // MUTATION: was Release
        fec_check::sync::atomic::Ordering::Acquire,
    )
    .expect_err("a relaxed ack must be reported");
    assert!(
        matches!(err, CheckError::Race { .. }),
        "expected a data race, got: {err}"
    );
    eprintln!("detected as required: {err}");
}
