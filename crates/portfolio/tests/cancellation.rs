//! Cancellation-path coverage: a losing worker cut off mid-search must
//! stop promptly, stay usable, and still contribute clean statistics to
//! the portfolio aggregate.

// the solve engine is compiled out under the model-checking feature
#![cfg(not(feature = "fec_check"))]

use fec_portfolio::{solve, PortfolioConfig};
use fec_sat::{Budget, Lit, SolveResult, Solver, Var};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// PHP(n, m): n pigeons into m holes — UNSAT when n > m, and hard
/// enough that workers are genuinely mid-search when cancelled.
fn pigeonhole(pigeons: usize, holes: usize) -> (usize, Vec<Vec<Lit>>) {
    let var = |p: usize, h: usize| Var::from_index(p * holes + h);
    let mut clauses = Vec::new();
    for p in 0..pigeons {
        clauses.push((0..holes).map(|h| Lit::pos(var(p, h))).collect());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                clauses.push(vec![Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
            }
        }
    }
    (pigeons * holes, clauses)
}

fn loaded_solver(pigeons: usize, holes: usize) -> Solver {
    let (num_vars, clauses) = pigeonhole(pigeons, holes);
    let mut s = Solver::new();
    for _ in 0..num_vars {
        s.new_var();
    }
    for c in &clauses {
        assert!(s.add_clause(c));
    }
    s
}

#[test]
fn stop_flag_raised_mid_search_is_observed_within_one_conflict() {
    // a losing portfolio worker sees the stop flag flip while it is deep
    // in propagation. Model that deterministically: the export hook
    // (which fires during conflict analysis, i.e. mid-search) raises the
    // solver's own stop flag on the first learned clause.
    let mut s = loaded_solver(8, 7);
    let flag = Arc::new(AtomicBool::new(false));
    let armed = Arc::new(AtomicBool::new(true));
    s.set_stop_flag(Arc::clone(&flag));
    let (hook_flag, hook_armed) = (Arc::clone(&flag), Arc::clone(&armed));
    s.set_export_hook(
        Box::new(move |_lits, _lbd| {
            if hook_armed.load(Ordering::Relaxed) {
                hook_flag.store(true, Ordering::Relaxed);
            }
        }),
        u32::MAX, // every learned clause qualifies: first conflict fires
    );
    assert_eq!(s.solve(&[]), SolveResult::Unknown);
    // the flag went up during conflict #1's analysis; the search loop
    // re-checks it before the next conflict can complete, so exactly one
    // clause was ever exported — the "observed within one propagation
    // loop" contract set_stop_flag documents
    let stats = s.stats();
    assert_eq!(
        stats.exported_clauses, 1,
        "solver ran past the stop flag: {stats:?}"
    );
    assert!(stats.conflicts >= 1);

    // cancellation must not poison the solver: disarm, clear the flag,
    // and the same instance finishes with accumulated stats
    armed.store(false, Ordering::Relaxed);
    flag.store(false, Ordering::Relaxed);
    let conflicts_at_cancel = stats.conflicts;
    assert_eq!(s.solve(&[]), SolveResult::Unsat);
    assert!(s.stats().conflicts > conflicts_at_cancel);
    assert_eq!(s.stats().solve_calls, 2);
}

#[test]
fn budget_exhausted_losers_aggregate_cleanly() {
    // every worker exhausts a tiny conflict budget mid-search: nobody
    // wins, nobody extracts, and the aggregate is still the exact
    // field-wise sum of the per-worker stats (no lost or double-counted
    // updates through the cancellation path)
    let (num_vars, clauses) = pigeonhole(8, 7);
    let out = solve(
        num_vars,
        &clauses,
        &[],
        Budget {
            max_conflicts: 16,
            timeout: None,
        },
        &PortfolioConfig::with_jobs(4),
    );
    assert_eq!(out.result, SolveResult::Unknown);
    assert!(out.stats.winner.is_none());
    assert!(out.model.is_none());
    assert!(out.winner_proof.is_none());
    assert_eq!(out.stats.workers.len(), 4);
    for (field, total, sum) in sum_check(&out.stats) {
        assert_eq!(total, sum, "aggregate {field} is not the worker sum");
    }
    // each worker really did search before its budget ran out
    for (i, w) in out.stats.workers.iter().enumerate() {
        assert!(w.conflicts >= 1, "worker {i} never reached a conflict");
        assert_eq!(w.solve_calls, 1);
    }
}

#[test]
fn cancelled_losers_aggregate_cleanly_after_a_win() {
    // normal racing path on a hard UNSAT instance: one worker wins, the
    // other three are cancelled through the stop flag mid-search; stats
    // from cancelled workers must still fold into a consistent total
    let (num_vars, clauses) = pigeonhole(9, 8);
    let out = solve(
        num_vars,
        &clauses,
        &[],
        Budget::unlimited(),
        &PortfolioConfig::with_jobs(4),
    );
    assert_eq!(out.result, SolveResult::Unsat);
    let winner = out.stats.winner.expect("someone must win");
    assert!(winner < 4);
    assert_eq!(out.stats.workers.len(), 4);
    for (field, total, sum) in sum_check(&out.stats) {
        assert_eq!(total, sum, "aggregate {field} is not the worker sum");
    }
    assert!(
        out.stats.workers[winner].conflicts > 0,
        "a pigeonhole win cannot be conflict-free"
    );
}

/// (field name, aggregate value, field-wise sum over workers) for every
/// counter in `SolverStats`, so mismatches name the broken field.
fn sum_check(stats: &fec_portfolio::PortfolioStats) -> Vec<(&'static str, u64, u64)> {
    macro_rules! fields {
        ($($name:ident),+ $(,)?) => {
            vec![$(
                (
                    stringify!($name),
                    stats.total.$name,
                    stats.workers.iter().map(|w| w.$name).sum::<u64>(),
                ),
            )+]
        };
    }
    fields!(
        conflicts,
        decisions,
        propagations,
        restarts,
        learnt_clauses,
        deleted_clauses,
        solve_calls,
        exported_clauses,
        imported_clauses,
        rejected_clauses,
    )
}
