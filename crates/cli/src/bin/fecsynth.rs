//! `fecsynth` — command-line front end for the synthesis workspace.
//! All logic lives in the `fec-cli` library for testability.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (code, out, err) = fec_cli::run(&args);
    print!("{out}");
    eprint!("{err}");
    std::process::exit(code);
}
