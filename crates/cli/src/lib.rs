//! Command implementations for the `fecsynth` binary.
//!
//! Kept in a library so the commands are unit-testable without
//! spawning processes; the binary (`src/bin/fecsynth.rs`) is a thin
//! argv → [`run`] shim.

use fec_gf2::BitVec;
use fec_hamming::{distance, Generator};
use fec_smt::Budget;
use fec_synth::cegis::{SynthesisConfig, Synthesizer};
use fec_synth::spec::parse_property;
use fec_synth::verify::{sat_min_distance, verify_props_with, VerifyOptions, VerifyOutcome};
use std::time::Duration;

/// Usage text for `--help` and argument errors.
pub const USAGE: &str = "\
fecsynth — synthesize, verify, and export Hamming FEC generators

USAGE:
    fecsynth synth  \"<property>\" [--timeout=SECS] [--check-proofs] [--jobs=N]
    fecsynth verify \"<property>\" --coeff <rows> [--check-proofs] [--jobs=N]
                    (rows like 101/110/111/011)
    fecsynth info   --coeff <rows>
    fecsynth emit   --coeff <rows> [--lang=c|rust]
    fecsynth encode --coeff <rows> --data <bits>

    --check-proofs  certify every solver answer: learned clauses are
                    re-checked as a DRAT proof by the independent
                    fec-drat RUP checker and SAT models are replayed
                    against the input clauses (aborts on discrepancy)
    --jobs=N        race every solver query across N diversified CDCL
                    workers sharing low-LBD learned clauses (parallel
                    portfolio; composes with --check-proofs — the
                    winning worker's proof is certified)

PROPERTY LANGUAGE (paper Fig. 3 + corr extension):
    len_G = 1 && len_d(G0) = 4 && len_c(G0) <= 4
         && md(G0) = 3 && minimal(len_c(G0))
    functions: len_d len_c len_1 md corr; objectives: minimal(e) maximal(e)

EXAMPLES:
    fecsynth synth \"len_d(G0) = 4 && md(G0) = 3 && len_c(G0) <= 4 && minimal(len_c(G0))\"
    fecsynth verify \"md(G0) = 3\" --coeff 101/110/111/011
    fecsynth emit --coeff 101/110/111/011 --lang=c
";

/// Runs one CLI invocation; returns (exit code, output text).
pub fn run(args: &[String]) -> (i32, String) {
    let mut out = String::new();
    let code = match args.first().map(String::as_str) {
        Some("synth") => cmd_synth(args, &mut out),
        Some("verify") => cmd_verify(args, &mut out),
        Some("info") => cmd_info(args, &mut out),
        Some("emit") => cmd_emit(args, &mut out),
        Some("encode") => cmd_encode(args, &mut out),
        Some("--help") | Some("-h") | None => {
            out.push_str(USAGE);
            0
        }
        Some(other) => {
            out.push_str(&format!("unknown command {other:?}\n\n{USAGE}"));
            2
        }
    };
    (code, out)
}

fn has_flag(args: &[String], name: &str) -> bool {
    let full = format!("--{name}");
    args.iter().any(|a| a == &full)
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    let eq = format!("--{name}=");
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&eq) {
            return Some(v);
        }
        if a == &format!("--{name}") {
            return args.get(i + 1).map(String::as_str);
        }
    }
    None
}

fn parse_jobs(args: &[String]) -> usize {
    flag_value(args, "jobs")
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

fn parse_coeff(args: &[String]) -> Result<Generator, String> {
    let rows = flag_value(args, "coeff").ok_or("missing --coeff <rows>")?;
    let text = rows.replace('/', "\n");
    Generator::from_coeff_str(&text).ok_or_else(|| format!("malformed coefficient rows {rows:?}"))
}

fn cmd_synth(args: &[String], out: &mut String) -> i32 {
    let Some(spec) = args.get(1).filter(|s| !s.starts_with("--")) else {
        out.push_str("synth: missing property argument\n");
        return 2;
    };
    let timeout = flag_value(args, "timeout")
        .and_then(|v| v.parse().ok())
        .unwrap_or(120);
    let prop = match parse_property(spec) {
        Ok(p) => p,
        Err(e) => {
            out.push_str(&format!("{e}\n"));
            return 2;
        }
    };
    let config = SynthesisConfig {
        timeout: Duration::from_secs(timeout),
        check_certificates: has_flag(args, "check-proofs"),
        jobs: parse_jobs(args),
        ..Default::default()
    };
    match Synthesizer::new(config).run(&prop) {
        Ok(r) => {
            for (i, g) in r.generators.iter().enumerate() {
                out.push_str(&format!(
                    "G{i}: ({}, {}) code, {} coefficient ones\n{}\n",
                    g.codeword_len(),
                    g.data_len(),
                    g.coefficient_ones(),
                    g
                ));
                out.push_str(&format!("coeff (for --coeff): {}\n", coeff_arg(g)));
            }
            out.push_str(&format!(
                "{} iterations, {:.2} s\n",
                r.iterations,
                r.elapsed.as_secs_f64()
            ));
            0
        }
        Err(e) => {
            out.push_str(&format!("synthesis failed: {e}\n"));
            1
        }
    }
}

fn cmd_verify(args: &[String], out: &mut String) -> i32 {
    let Some(spec) = args.get(1).filter(|s| !s.starts_with("--")) else {
        out.push_str("verify: missing property argument\n");
        return 2;
    };
    let g = match parse_coeff(args) {
        Ok(g) => g,
        Err(e) => {
            out.push_str(&format!("{e}\n"));
            return 2;
        }
    };
    let prop = match parse_property(spec) {
        Ok(p) => p,
        Err(e) => {
            out.push_str(&format!("{e}\n"));
            return 2;
        }
    };
    let opts = VerifyOptions {
        budget: Budget::unlimited(),
        check_certificates: has_flag(args, "check-proofs"),
        jobs: parse_jobs(args),
    };
    let (outcome, stats) = verify_props_with(&[g], &prop, opts);
    if opts.check_certificates {
        out.push_str(&format!(
            "certificates: {} lemmas RUP-checked, {} models validated, {} UNSAT answers certified\n",
            stats.lemmas_checked, stats.models_validated, stats.unsat_certified
        ));
    }
    if opts.jobs > 1 {
        let queries = stats.portfolio.len();
        let shared: u64 = stats.portfolio.iter().map(|p| p.imported).sum();
        out.push_str(&format!(
            "portfolio: {} workers × {queries} queries, {} total conflicts, {shared} clauses imported\n",
            opts.jobs, stats.conflicts
        ));
        for (qi, p) in stats.portfolio.iter().enumerate() {
            let winner = p
                .winner
                .map_or("none".to_string(), |w| format!("worker {w}"));
            out.push_str(&format!(
                "  query {qi}: winner {winner}, per-worker conflicts {:?}\n",
                p.per_worker_conflicts
            ));
        }
    }
    match outcome {
        VerifyOutcome::Holds => {
            out.push_str(&format!("HOLDS ({:.2} s)\n", stats.elapsed.as_secs_f64()));
            0
        }
        VerifyOutcome::Fails { .. } => {
            out.push_str("FAILS\n");
            1
        }
        VerifyOutcome::Unknown => {
            out.push_str("UNKNOWN (budget exhausted)\n");
            3
        }
    }
}

fn cmd_info(args: &[String], out: &mut String) -> i32 {
    let g = match parse_coeff(args) {
        Ok(g) => g,
        Err(e) => {
            out.push_str(&format!("{e}\n"));
            return 2;
        }
    };
    let md = if g.data_len() <= 20 {
        distance::min_distance_exhaustive(&g)
    } else {
        sat_min_distance(&g, Budget::unlimited()).0.unwrap_or(0)
    };
    out.push_str(&format!(
        "({}, {}) code: {} check bits, {} coefficient ones\n\
         minimum distance {md} → detects {} errors, corrects {}\n{}\n",
        g.codeword_len(),
        g.data_len(),
        g.check_len(),
        g.coefficient_ones(),
        md.saturating_sub(1),
        md.saturating_sub(1) / 2,
        g
    ));
    0
}

fn cmd_emit(args: &[String], out: &mut String) -> i32 {
    let g = match parse_coeff(args) {
        Ok(g) => g,
        Err(e) => {
            out.push_str(&format!("{e}\n"));
            return 2;
        }
    };
    match flag_value(args, "lang").unwrap_or("c") {
        "c" => out.push_str(&fec_codegen::emit_c(&g, false)),
        "rust" => out.push_str(&fec_codegen::emit_rust(&g)),
        other => {
            out.push_str(&format!("unknown language {other:?} (use c or rust)\n"));
            return 2;
        }
    }
    0
}

fn cmd_encode(args: &[String], out: &mut String) -> i32 {
    let g = match parse_coeff(args) {
        Ok(g) => g,
        Err(e) => {
            out.push_str(&format!("{e}\n"));
            return 2;
        }
    };
    let Some(data) = flag_value(args, "data") else {
        out.push_str("encode: missing --data <bits>\n");
        return 2;
    };
    let Some(bits) = BitVec::from_bitstring(data) else {
        out.push_str(&format!("malformed data bits {data:?}\n"));
        return 2;
    };
    if bits.len() != g.data_len() {
        out.push_str(&format!(
            "data is {} bits but the code expects {}\n",
            bits.len(),
            g.data_len()
        ));
        return 2;
    }
    out.push_str(&format!("{}\n", g.encode(&bits)));
    0
}

fn coeff_arg(g: &Generator) -> String {
    (0..g.data_len())
        .map(|r| {
            (0..g.check_len())
                .map(|c| if g.coefficients().get(r, c) { '1' } else { '0' })
                .collect::<String>()
        })
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_and_unknown() {
        let (code, out) = run(&[]);
        assert_eq!(code, 0);
        assert!(out.contains("USAGE"));
        let (code, out) = run(&argv(&["bogus"]));
        assert_eq!(code, 2);
        assert!(out.contains("unknown command"));
    }

    #[test]
    fn synth_produces_a_code() {
        let (code, out) = run(&argv(&[
            "synth",
            "len_d(G0) = 4 && md(G0) = 3 && len_c(G0) <= 4 && minimal(len_c(G0))",
            "--timeout=30",
        ]));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("(7, 4) code"), "{out}");
        assert!(out.contains("coeff (for --coeff):"));
    }

    #[test]
    fn synth_rejects_bad_property() {
        let (code, out) = run(&argv(&["synth", "md(G0) ="]));
        assert_eq!(code, 2);
        assert!(out.contains("parse error"));
    }

    #[test]
    fn synth_reports_infeasible() {
        let (code, out) = run(&argv(&[
            "synth",
            "len_d(G0) = 4 && len_c(G0) = 1 && md(G0) = 3",
            "--timeout=30",
        ]));
        assert_eq!(code, 1);
        assert!(out.contains("no generator"));
    }

    #[test]
    fn verify_holds_and_fails() {
        let coeff = "101/110/111/011";
        let (code, out) = run(&argv(&["verify", "md(G0) = 3", "--coeff", coeff]));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("HOLDS"));
        let (code, out) = run(&argv(&["verify", "md(G0) = 4", "--coeff", coeff]));
        assert_eq!(code, 1);
        assert!(out.contains("FAILS"));
    }

    #[test]
    fn verify_with_proof_checking() {
        let coeff = "101/110/111/011";
        let (code, out) = run(&argv(&[
            "verify",
            "md(G0) = 3",
            "--coeff",
            coeff,
            "--check-proofs",
        ]));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("HOLDS"), "{out}");
        assert!(out.contains("certificates:"), "{out}");
        assert!(out.contains("UNSAT answers certified"), "{out}");
        // without the flag no certificate line is printed
        let (_, out) = run(&argv(&["verify", "md(G0) = 3", "--coeff", coeff]));
        assert!(!out.contains("certificates:"), "{out}");
    }

    #[test]
    fn synth_with_proof_checking() {
        let (code, out) = run(&argv(&[
            "synth",
            "len_d(G0) = 4 && md(G0) = 3 && len_c(G0) <= 4 && minimal(len_c(G0))",
            "--timeout=30",
            "--check-proofs",
        ]));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("(7, 4) code"), "{out}");
    }

    #[test]
    fn verify_with_jobs_portfolio() {
        let coeff = "101/110/111/011";
        let (code, out) = run(&argv(&[
            "verify",
            "md(G0) = 3",
            "--coeff",
            coeff,
            "--jobs=4",
            "--check-proofs",
        ]));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("HOLDS"), "{out}");
        assert!(out.contains("portfolio: 4 workers"), "{out}");
        assert!(out.contains("winner worker"), "{out}");
        assert!(out.contains("certificates:"), "{out}");
        // single mode prints no portfolio summary
        let (_, out) = run(&argv(&["verify", "md(G0) = 3", "--coeff", coeff]));
        assert!(!out.contains("portfolio:"), "{out}");
    }

    #[test]
    fn synth_with_jobs_portfolio() {
        let (code, out) = run(&argv(&[
            "synth",
            "len_d(G0) = 4 && md(G0) = 3 && len_c(G0) <= 4 && minimal(len_c(G0))",
            "--timeout=30",
            "--jobs=2",
        ]));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("(7, 4) code"), "{out}");
    }

    #[test]
    fn info_reports_distance() {
        let (code, out) = run(&argv(&["info", "--coeff", "101/110/111/011"]));
        assert_eq!(code, 0);
        assert!(out.contains("minimum distance 3"), "{out}");
        assert!(out.contains("corrects 1"));
    }

    #[test]
    fn emit_c_and_rust() {
        let (code, out) = run(&argv(&["emit", "--coeff", "11/01", "--lang=c"]));
        assert_eq!(code, 0);
        assert!(out.contains("uint64_t encode_checks"));
        let (code, out) = run(&argv(&["emit", "--coeff", "11/01", "--lang=rust"]));
        assert_eq!(code, 0);
        assert!(out.contains("pub fn encode_checks"));
        let (code, _) = run(&argv(&["emit", "--coeff", "11/01", "--lang=go"]));
        assert_eq!(code, 2);
    }

    #[test]
    fn encode_round_trip_with_fig2_data() {
        let (code, out) = run(&argv(&[
            "encode",
            "--coeff",
            "101/110/111/011",
            "--data",
            "0011",
        ]));
        assert_eq!(code, 0);
        assert_eq!(out.trim(), "0011100"); // the paper's Fig. 2 example
    }

    #[test]
    fn encode_length_mismatch() {
        let (code, out) = run(&argv(&[
            "encode",
            "--coeff",
            "101/110/111/011",
            "--data",
            "001",
        ]));
        assert_eq!(code, 2);
        assert!(out.contains("expects 4"));
    }

    #[test]
    fn coeff_parsing_errors() {
        let (code, _) = run(&argv(&["info"]));
        assert_eq!(code, 2);
        let (code, _) = run(&argv(&["info", "--coeff", "1x1"]));
        assert_eq!(code, 2);
    }
}
