//! Command implementations for the `fecsynth` binary.
//!
//! Kept in a library so the commands are unit-testable without
//! spawning processes; the binary (`src/bin/fecsynth.rs`) is a thin
//! argv → [`run`] shim.
//!
//! Error reporting contract: human-readable results go to the stdout
//! stream, diagnostics go to the stderr stream as one structured line
//! `error: kind=<kind> msg="<message>"`, and the exit code encodes the
//! failure class (0 success, 1 property fails / no solution, 2 usage
//! or unsupported input, 3 budget/timeout exhausted).

#![forbid(unsafe_code)]

mod bench_compare;
mod report;

use fec_gf2::BitVec;
use fec_hamming::{distance, Generator};
use fec_smt::Budget;
use fec_synth::cegis::{SynthError, SynthesisConfig, Synthesizer};
use fec_synth::spec::parse_property;
use fec_synth::verify::{sat_min_distance, verify_props_with, VerifyOptions, VerifyOutcome};
use fec_trace::{Level, TraceConfig};
use std::fmt::Write as _;
use std::time::Duration;

/// Usage text for `--help` and argument errors.
pub const USAGE: &str = "\
fecsynth — synthesize, verify, and export Hamming FEC generators

USAGE:
    fecsynth analyze \"<property>\" [--max-check=N] [TRACE]
    fecsynth synth  \"<property>\" [--timeout=SECS] [--check-proofs] [--jobs=N]
                    [--simplify] [--incremental|--no-incremental] [TRACE]
    fecsynth verify \"<property>\" --coeff <rows> [--check-proofs] [--jobs=N]
                    [--simplify] [TRACE]
                    (rows like 101/110/111/011)
    fecsynth info   --coeff <rows>
    fecsynth emit   --coeff <rows> [--lang=c|rust] [--minimize]
    fecsynth encode --coeff <rows> --data <bits>
    fecsynth lint-kernel --coeff <rows> [--lang=c|rust] [--file PATH]
    fecsynth stream [--adapt] [--seed=N] [--bytes=N] [--depth=N]
                    [--gen-size=N] [--repair=N] [--timeout=SECS] [--jobs=N]
                    [--simplify] [TRACE]
    fecsynth trace-validate <file.jsonl>
    fecsynth report <trace.jsonl> [--json]
    fecsynth bench-compare <baseline-dir> <current-dir> [--json]

    --check-proofs  certify every solver answer: learned clauses are
                    re-checked as a DRAT proof by the independent
                    fec-drat RUP checker and SAT models are replayed
                    against the input clauses (aborts on discrepancy)
    --jobs=N        race every solver query across N diversified CDCL
                    workers sharing low-LBD learned clauses (parallel
                    portfolio; composes with --check-proofs — the
                    winning worker's proof is certified)
    --simplify      run SatELite-style pre-/inprocessing (bounded
                    variable elimination, subsumption, failed-literal
                    probing, vivification) in the backing solvers;
                    composes with --jobs (workers get diversified
                    technique mixes) and --check-proofs (simplifier
                    steps are part of the checked DRAT stream)
    --incremental   (synth; the default) keep solver state warm across
                    CEGIS iterations: learned clauses, branching
                    activities, and saved phases carry over, and with
                    --simplify an inprocessing pass runs between
                    iterations; --no-incremental selects the
                    from-scratch reference mode that rebuilds every
                    solver per iteration and replays counterexamples
    --minimize      (emit) run the cancellation-aware CSE minimizer and
                    emit the certified circuit instead of the sparse
                    per-column form; the output is accepted only if the
                    static validator proves it equal to the matrix

analyze runs the static feasibility pipeline without any solver: the
property is canonicalized (constant folding, interval narrowing,
dead-conjunct lints, a stable fecspec-v1 content hash), then every
generator's [n, k, d] requirement is checked against the classical
coding bounds (Singleton, sphere-packing, Plotkin, Griesmer, with
shortening/residual refinement; Gilbert–Varshamov for existence).
Verdicts: INFEASIBLE (printed with its arithmetic certificate, exit 1),
FEASIBLE (a code provably exists), NEEDS SEARCH (run synth).
--max-check=N bounds the check length when the property leaves it open
(default 14, matching synth).

stream simulates the packet-FEC pipeline (fec-stream) over a bursty
Gilbert–Elliott channel: a deterministic --bytes payload is packetized,
fountain-coded, encoded through the certified minimized kernels,
interleaved, corrupted, and decoded (detect-and-erase + recovery).
Every draw derives from --seed, so runs are bit-reproducible. With
--adapt, the first half of the stream probes the channel under the
static 802.3df deployment, the decoder's measured burst profile becomes
a §4.3 weighted spec handed to CEGIS, and the second half replays under
both codes; exit 1 if the adapted code fails to strictly lower residual
loss.

lint-kernel statically validates encoder artifacts against the matrix:
    without --file, every internal backend form (kernels, emitted C,
    emitted Rust, minimized circuit) is symbolically proved equivalent;
    with --file PATH, the given emitted source is parsed and proved
    instead. Diagnostics carry stable classes (missing-term,
    extra-term, shift-range, non-linear-op, …); exit 1 on any
    error-class lint.

TRACE (observability; any of these enables the collector):
    --trace=LEVEL       live span/event log on stderr
                        (error|warn|info|debug|trace; bare --trace = info)
    --trace-out=PATH    Chrome trace_event JSON — open in Perfetto
                        (https://ui.perfetto.dev) or about:tracing
    --trace-jsonl=PATH  raw event stream, one JSON object per line
                        (validate with `fecsynth trace-validate PATH`)
    --metrics-out=PATH  aggregated end-of-run counters + span timings
    --progress[=MS]     watchdog heartbeat: a `progress` record every MS
                        milliseconds (default 1000) plus a live one-line
                        status on stderr when it is a TTY — conflicts,
                        CEGIS iterations, learnt-DB size; handy for long
                        maximal(md) hunts
    --stall-after=MS    flag the run as stalled (progress records carry
                        stalled=true and a one-shot warn event fires)
                        after MS milliseconds with no solver restart or
                        CEGIS iteration (default 30000; needs --progress)

report replays a --trace-jsonl stream and attributes wall-clock to
phases (synth, verify, simplify, proof-check, portfolio, other) from
span self-times, plus progress/stall and instrument summaries; --json
emits the same breakdown machine-readably.

bench-compare validates every BENCH_*.json in <current-dir> against the
shared bench_meta schema and diffs metrics against <baseline-dir> with
per-metric-class regression thresholds (timings 50%, quality ratios
10%, booleans must not regress); exit 1 on any regression.

EXIT CODES:
    0 success / property HOLDS        2 usage, parse, or unsupported input
    1 property FAILS / no solution    3 solver budget or timeout exhausted

PROPERTY LANGUAGE (paper Fig. 3 + corr extension):
    len_G = 1 && len_d(G0) = 4 && len_c(G0) <= 4
         && md(G0) = 3 && minimal(len_c(G0))
    functions: len_d len_c len_1 md corr; objectives: minimal(e) maximal(e)

EXAMPLES:
    fecsynth analyze \"len_d(G0) = 4 && len_c(G0) = 4 && md(G0) = 6\"
    fecsynth synth \"len_d(G0) = 4 && md(G0) = 3 && len_c(G0) <= 4 && minimal(len_c(G0))\"
    fecsynth verify \"md(G0) = 3\" --coeff 101/110/111/011
    fecsynth synth \"len_d(G0) = 4 && md(G0) = 3 && minimal(len_c(G0))\" \\
        --trace=info --trace-out=run.json --metrics-out=metrics.json
    fecsynth emit --coeff 101/110/111/011 --lang=c
";

/// Runs one CLI invocation; returns (exit code, stdout text, stderr
/// text). Diagnostics on the stderr stream follow the structured
/// one-line format described in the module docs.
pub fn run(args: &[String]) -> (i32, String, String) {
    let mut out = String::new();
    let mut err = String::new();
    let traced = match setup_trace(args) {
        Ok(t) => t,
        Err(e) => {
            fail(&mut err, "usage", &e);
            return (2, out, err);
        }
    };
    let code = match args.first().map(String::as_str) {
        Some("analyze") => cmd_analyze(args, &mut out, &mut err),
        Some("synth") => cmd_synth(args, &mut out, &mut err),
        Some("verify") => cmd_verify(args, &mut out, &mut err),
        Some("info") => cmd_info(args, &mut out, &mut err),
        Some("emit") => cmd_emit(args, &mut out, &mut err),
        Some("encode") => cmd_encode(args, &mut out, &mut err),
        Some("lint-kernel") => cmd_lint_kernel(args, &mut out, &mut err),
        Some("stream") => cmd_stream(args, &mut out, &mut err),
        Some("trace-validate") => cmd_trace_validate(args, &mut out, &mut err),
        Some("report") => report::cmd_report(args, &mut out, &mut err),
        Some("bench-compare") => bench_compare::cmd_bench_compare(args, &mut out, &mut err),
        Some("--help") | Some("-h") | None => {
            out.push_str(USAGE);
            0
        }
        Some(other) => {
            fail(&mut err, "usage", &format!("unknown command {other:?}"));
            err.push('\n');
            err.push_str(USAGE);
            2
        }
    };
    if traced {
        fec_trace::shutdown();
    }
    (code, out, err)
}

/// Writes the structured diagnostic line `error: kind=... msg="..."`.
pub(crate) fn fail(err: &mut String, kind: &str, msg: &str) {
    let _ = writeln!(err, "error: kind={kind} msg={msg:?}");
}

/// Exit code for a synthesis failure class (see module docs).
fn synth_exit_code(e: &SynthError) -> i32 {
    match e.kind() {
        "timeout" => 3,
        "no-solution" => 1,
        _ => 2, // unsupported, inconsistent: bad input
    }
}

/// Parses the `--trace*` family and installs the global collector when
/// any is present. Returns whether a collector was installed (the
/// caller must `fec_trace::shutdown()` afterwards).
fn setup_trace(args: &[String]) -> Result<bool, String> {
    let level_arg = flag_value(args, "trace");
    let chrome = flag_value(args, "trace-out");
    let jsonl = flag_value(args, "trace-jsonl");
    let metrics = flag_value(args, "metrics-out");
    let stderr_on = has_flag_or_value(args, "trace");
    let progress_on = has_flag_or_value(args, "progress");
    let stall_ms = flag_value(args, "stall-after");
    if !stderr_on && !progress_on && chrome.is_none() && jsonl.is_none() && metrics.is_none() {
        if stall_ms.is_some() {
            return Err("--stall-after requires --progress".into());
        }
        return Ok(false);
    }
    let level = match level_arg {
        Some(v) if !v.starts_with("--") => {
            Level::parse(v).ok_or_else(|| format!("bad --trace level {v:?}"))?
        }
        _ => Level::Info, // bare --trace
    };
    let mut config = TraceConfig::new(level);
    if stderr_on {
        config = config.stderr();
    }
    if let Some(p) = chrome {
        config = config
            .chrome_path(p)
            .map_err(|e| format!("cannot create --trace-out {p:?}: {e}"))?;
    }
    if let Some(p) = jsonl {
        config = config
            .jsonl_path(p)
            .map_err(|e| format!("cannot create --trace-jsonl {p:?}: {e}"))?;
    }
    if let Some(p) = metrics {
        config = config.metrics_path(p);
    }
    if progress_on {
        let every_ms = match flag_value(args, "progress") {
            Some(v) if !v.starts_with("--") => v
                .parse::<u64>()
                .ok()
                .filter(|&ms| ms >= 1)
                .ok_or_else(|| format!("bad --progress interval {v:?} (milliseconds)"))?,
            _ => 1_000, // bare --progress: 1s heartbeat
        };
        config = config
            .progress_every(Duration::from_millis(every_ms))
            .progress_tty(true);
        if let Some(v) = stall_ms {
            let ms = v
                .parse::<u64>()
                .ok()
                .filter(|&ms| ms >= 1)
                .ok_or_else(|| format!("bad --stall-after {v:?} (milliseconds)"))?;
            config = config.stall_after(Duration::from_millis(ms));
        }
    } else if stall_ms.is_some() {
        return Err("--stall-after requires --progress".into());
    }
    fec_trace::install(config);
    Ok(true)
}

pub(crate) fn has_flag(args: &[String], name: &str) -> bool {
    let full = format!("--{name}");
    args.iter().any(|a| a == &full)
}

/// `--name`, `--name=v`, or `--name v` all count as present.
fn has_flag_or_value(args: &[String], name: &str) -> bool {
    has_flag(args, name) || flag_value(args, name).is_some()
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    let eq = format!("--{name}=");
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&eq) {
            return Some(v);
        }
        if a == &format!("--{name}") {
            return args.get(i + 1).map(String::as_str);
        }
    }
    None
}

fn parse_jobs(args: &[String]) -> usize {
    flag_value(args, "jobs")
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

fn parse_coeff(args: &[String]) -> Result<Generator, String> {
    let rows = flag_value(args, "coeff").ok_or("missing --coeff <rows>")?;
    let text = rows.replace('/', "\n");
    Generator::from_coeff_str(&text).ok_or_else(|| format!("malformed coefficient rows {rows:?}"))
}

fn cmd_analyze(args: &[String], out: &mut String, err: &mut String) -> i32 {
    use fec_analyze::{PointVerdict, SpecError};
    let Some(spec) = args.get(1).filter(|s| !s.starts_with("--")) else {
        fail(err, "usage", "analyze: missing property argument");
        return 2;
    };
    let max_check = match parse_bounded(args, "max-check", 14, 1..=64) {
        Ok(v) => v,
        Err(e) => {
            fail(err, "usage", &e);
            return 2;
        }
    };
    let prop = match parse_property(spec) {
        Ok(p) => p,
        Err(e) => {
            fail(err, "parse", &e.to_string());
            return 2;
        }
    };
    if let Err(e) = fec_synth::spec::typecheck(&prop) {
        fail(err, "type", &e.to_string());
        return 2;
    }
    let a = match fec_analyze::analyze(&prop, max_check) {
        Ok(a) => a,
        Err(e) => {
            let kind = match e {
                SpecError::Unsupported(_) => "unsupported",
                SpecError::Inconsistent(_) => "inconsistent",
            };
            fail(err, kind, &e.to_string());
            return 2;
        }
    };
    let _ = writeln!(out, "canonical: {}", a.canon.canonical_text());
    let _ = writeln!(out, "hash: {}", a.canon.hash);
    for l in &a.canon.lints {
        let _ = writeln!(out, "{l}");
    }
    for g in &a.gens {
        let head = format!("G{}: [{}, {}] d >= {}", g.gen, g.n, g.k, g.d);
        match &g.verdict {
            PointVerdict::Infeasible(c) => {
                let _ = writeln!(out, "{head} — INFEASIBLE");
                let _ = writeln!(out, "  {c}");
            }
            PointVerdict::TriviallyFeasible => {
                let _ = writeln!(
                    out,
                    "{head} — FEASIBLE (Gilbert–Varshamov guarantees a code)"
                );
            }
            PointVerdict::NeedsSearch { d_lo, d_hi } => {
                let _ = writeln!(
                    out,
                    "{head} — NEEDS SEARCH (best achievable distance in {d_lo}..={d_hi})"
                );
            }
        }
    }
    let _ = writeln!(out, "verdict: {}", a.overall_kind());
    if let Some(c) = a.certificate() {
        fail(err, "no-solution", &c.to_string());
        return 1;
    }
    0
}

fn cmd_synth(args: &[String], out: &mut String, err: &mut String) -> i32 {
    let Some(spec) = args.get(1).filter(|s| !s.starts_with("--")) else {
        fail(err, "usage", "synth: missing property argument");
        return 2;
    };
    let timeout = flag_value(args, "timeout")
        .and_then(|v| v.parse().ok())
        .unwrap_or(120);
    let prop = match parse_property(spec) {
        Ok(p) => p,
        Err(e) => {
            fail(err, "parse", &e.to_string());
            return 2;
        }
    };
    if has_flag(args, "incremental") && has_flag(args, "no-incremental") {
        fail(
            err,
            "usage",
            "synth: --incremental and --no-incremental are mutually exclusive",
        );
        return 2;
    }
    let config = SynthesisConfig {
        timeout: Duration::from_secs(timeout),
        check_certificates: has_flag(args, "check-proofs"),
        jobs: parse_jobs(args),
        simplify: has_flag(args, "simplify"),
        // warm solvers are the default; --no-incremental opts into the
        // from-scratch reference mode
        incremental: !has_flag(args, "no-incremental"),
        ..Default::default()
    };
    match Synthesizer::new(config).run(&prop) {
        Ok(r) => {
            for (i, g) in r.generators.iter().enumerate() {
                out.push_str(&format!(
                    "G{i}: ({}, {}) code, {} coefficient ones\n{}\n",
                    g.codeword_len(),
                    g.data_len(),
                    g.coefficient_ones(),
                    g
                ));
                out.push_str(&format!("coeff (for --coeff): {}\n", coeff_arg(g)));
            }
            out.push_str(&format!(
                "{} iterations, {:.2} s\n",
                r.iterations,
                r.elapsed.as_secs_f64()
            ));
            0
        }
        Err(e) => {
            fail(err, e.kind(), &e.to_string());
            synth_exit_code(&e)
        }
    }
}

fn cmd_verify(args: &[String], out: &mut String, err: &mut String) -> i32 {
    let Some(spec) = args.get(1).filter(|s| !s.starts_with("--")) else {
        fail(err, "usage", "verify: missing property argument");
        return 2;
    };
    let g = match parse_coeff(args) {
        Ok(g) => g,
        Err(e) => {
            fail(err, "usage", &e);
            return 2;
        }
    };
    let prop = match parse_property(spec) {
        Ok(p) => p,
        Err(e) => {
            fail(err, "parse", &e.to_string());
            return 2;
        }
    };
    let opts = VerifyOptions {
        budget: Budget::unlimited(),
        check_certificates: has_flag(args, "check-proofs"),
        jobs: parse_jobs(args),
        simplify: has_flag(args, "simplify"),
        ..VerifyOptions::default()
    };
    let (outcome, stats) = verify_props_with(&[g], &prop, opts);
    if opts.check_certificates {
        out.push_str(&format!(
            "certificates: {} lemmas RUP-checked, {} models validated, {} UNSAT answers certified\n",
            stats.lemmas_checked, stats.models_validated, stats.unsat_certified
        ));
    }
    if opts.jobs > 1 {
        let queries = stats.portfolio.len();
        let shared: u64 = stats.portfolio.iter().map(|p| p.imported).sum();
        out.push_str(&format!(
            "portfolio: {} workers × {queries} queries, {} total conflicts, {shared} clauses imported\n",
            opts.jobs, stats.conflicts
        ));
        for (qi, p) in stats.portfolio.iter().enumerate() {
            let winner = p
                .winner
                .map_or("none".to_string(), |w| format!("worker {w}"));
            out.push_str(&format!(
                "  query {qi}: winner {winner}, per-worker conflicts {:?}\n",
                p.per_worker_conflicts
            ));
        }
    }
    match outcome {
        VerifyOutcome::Holds => {
            out.push_str(&format!("HOLDS ({:.2} s)\n", stats.elapsed.as_secs_f64()));
            0
        }
        VerifyOutcome::Fails { .. } => {
            out.push_str("FAILS\n");
            1
        }
        VerifyOutcome::Unknown => {
            out.push_str("UNKNOWN (budget exhausted)\n");
            3
        }
    }
}

fn cmd_info(args: &[String], out: &mut String, err: &mut String) -> i32 {
    let g = match parse_coeff(args) {
        Ok(g) => g,
        Err(e) => {
            fail(err, "usage", &e);
            return 2;
        }
    };
    let md = if g.data_len() <= 20 {
        distance::min_distance_exhaustive(&g)
    } else {
        sat_min_distance(&g, Budget::unlimited()).0.unwrap_or(0)
    };
    out.push_str(&format!(
        "({}, {}) code: {} check bits, {} coefficient ones\n\
         minimum distance {md} → detects {} errors, corrects {}\n{}\n",
        g.codeword_len(),
        g.data_len(),
        g.check_len(),
        g.coefficient_ones(),
        md.saturating_sub(1),
        md.saturating_sub(1) / 2,
        g
    ));
    0
}

fn cmd_emit(args: &[String], out: &mut String, err: &mut String) -> i32 {
    let g = match parse_coeff(args) {
        Ok(g) => g,
        Err(e) => {
            fail(err, "usage", &e);
            return 2;
        }
    };
    if g.check_len() > 64 {
        fail(err, "usage", "emit supports at most 64 check bits");
        return 2;
    }
    let lang: fec_circ::Lang = match flag_value(args, "lang").unwrap_or("c").parse() {
        Ok(l) => l,
        Err(e) => {
            fail(err, "usage", &e);
            return 2;
        }
    };
    let circuit = if has_flag(args, "minimize") {
        // certified: minimize() falls back to the sparse circuit unless
        // the validator proves the optimized one equivalent
        Some(fec_circ::minimize(&g).circuit)
    } else if g.data_len() > 64 {
        // the legacy scalar emitters cap at one data word; wide codes
        // go through the circuit emitter (word-array parameter)
        Some(fec_circ::Circuit::from_generator(&g))
    } else {
        None
    };
    let src = match (circuit, lang) {
        (Some(c), fec_circ::Lang::C) => fec_circ::emit_c_circuit(&c),
        (Some(c), fec_circ::Lang::Rust) => fec_circ::emit_rust_circuit(&c),
        (None, fec_circ::Lang::C) => fec_codegen::emit_c(&g, false),
        (None, fec_circ::Lang::Rust) => fec_codegen::emit_rust(&g),
    };
    out.push_str(&src);
    0
}

/// One verdict line for `lint-kernel`; returns whether the report was
/// error-free.
fn lint_verdict(out: &mut String, form: &str, report: &fec_circ::Report) -> bool {
    if report.is_valid() {
        let _ = writeln!(
            out,
            "{form}: OK ({} xors proved equal to G)",
            report.xor_count
        );
    } else {
        let _ = writeln!(out, "{form}: FAIL");
    }
    for d in &report.diags {
        let _ = writeln!(out, "  {d}");
    }
    report.is_valid()
}

fn cmd_lint_kernel(args: &[String], out: &mut String, err: &mut String) -> i32 {
    let g = match parse_coeff(args) {
        Ok(g) => g,
        Err(e) => {
            fail(err, "usage", &e);
            return 2;
        }
    };
    if g.check_len() > 64 {
        fail(err, "usage", "lint-kernel supports at most 64 check bits");
        return 2;
    }
    let lang: fec_circ::Lang = match flag_value(args, "lang").unwrap_or("c").parse() {
        Ok(l) => l,
        Err(e) => {
            fail(err, "usage", &e);
            return 2;
        }
    };
    if let Some(path) = flag_value(args, "file") {
        // validate one emitted source file against the matrix
        let src = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                fail(err, "usage", &format!("cannot read {path:?}: {e}"));
                return 2;
            }
        };
        let report = fec_circ::validate_source(&src, lang, &g);
        let ok = lint_verdict(out, path, &report);
        return i32::from(!ok);
    }
    // no --file: prove every internal backend form
    let mut all_ok = true;
    let wide = g.data_len() > 64;
    let sparse_circuit = fec_circ::Circuit::from_generator(&g);
    all_ok &= lint_verdict(
        out,
        "generator-circuit",
        &fec_circ::validate_circuit(&sparse_circuit, &g),
    );
    if wide {
        out.push_str("mask-kernel: skipped (runtime kernels cap at 64 data bits)\n");
        out.push_str("sparse-kernel: skipped\n");
        out.push_str("naive-kernel: skipped\n");
    } else {
        let mask = fec_circ::Circuit::from_mask_kernel(&fec_codegen::MaskKernel::new(&g));
        all_ok &= lint_verdict(out, "mask-kernel", &fec_circ::validate_circuit(&mask, &g));
        let sparse = fec_circ::Circuit::from_sparse_kernel(&fec_codegen::SparseKernel::new(&g));
        all_ok &= lint_verdict(
            out,
            "sparse-kernel",
            &fec_circ::validate_circuit(&sparse, &g),
        );
        let naive = fec_circ::Circuit::from_naive_kernel(&fec_codegen::NaiveKernel::new(&g));
        all_ok &= lint_verdict(out, "naive-kernel", &fec_circ::validate_circuit(&naive, &g));
    }
    let (c_src, rust_src) = if wide {
        (
            fec_circ::emit_c_circuit(&sparse_circuit),
            fec_circ::emit_rust_circuit(&sparse_circuit),
        )
    } else {
        (fec_codegen::emit_c(&g, true), fec_codegen::emit_rust(&g))
    };
    all_ok &= lint_verdict(
        out,
        "emitted-c",
        &fec_circ::validate_source(&c_src, fec_circ::Lang::C, &g),
    );
    all_ok &= lint_verdict(
        out,
        "emitted-rust",
        &fec_circ::validate_source(&rust_src, fec_circ::Lang::Rust, &g),
    );
    let m = fec_circ::minimize(&g);
    all_ok &= lint_verdict(out, "minimized-circuit", &m.report);
    let _ = writeln!(
        out,
        "minimizer: {} → {} xors ({:.1}% reduction vs sparse)",
        m.sparse_xor_count,
        m.xor_count(),
        m.reduction() * 100.0
    );
    i32::from(!all_ok)
}

fn cmd_encode(args: &[String], out: &mut String, err: &mut String) -> i32 {
    let g = match parse_coeff(args) {
        Ok(g) => g,
        Err(e) => {
            fail(err, "usage", &e);
            return 2;
        }
    };
    let Some(data) = flag_value(args, "data") else {
        fail(err, "usage", "encode: missing --data <bits>");
        return 2;
    };
    let Some(bits) = BitVec::from_bitstring(data) else {
        fail(err, "usage", &format!("malformed data bits {data:?}"));
        return 2;
    };
    if bits.len() != g.data_len() {
        fail(
            err,
            "usage",
            &format!(
                "data is {} bits but the code expects {}",
                bits.len(),
                g.data_len()
            ),
        );
        return 2;
    }
    out.push_str(&format!("{}\n", g.encode(&bits)));
    0
}

/// Parses a `--name=N` numeric flag with bounds, or defaults.
fn parse_bounded(
    args: &[String],
    name: &str,
    default: usize,
    range: std::ops::RangeInclusive<usize>,
) -> Result<usize, String> {
    match flag_value(args, name) {
        None => Ok(default),
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|n| range.contains(n))
            .ok_or_else(|| {
                format!(
                    "--{name} must be an integer in {}..={}, got {v:?}",
                    range.start(),
                    range.end()
                )
            }),
    }
}

/// One summary block for a stream run.
fn print_stream_report(out: &mut String, label: &str, o: &fec_stream::StreamOutcome, k: usize) {
    let s = &o.stats;
    let _ = writeln!(
        out,
        "{label}: {} data words, {} frames, {} channel bits ({} flips)",
        s.data_words, s.frames, s.channel_bits, s.channel_flips
    );
    let _ = writeln!(
        out,
        "  erased frames {}, recovered {}, lost {}, corrupted {}",
        s.erased_frames, s.recovered_words, s.lost_words, s.corrupted_words
    );
    let _ = writeln!(
        out,
        "  residual loss {:.4}, overhead {:.3}x, recovery latency mean {:.1} max {} frames",
        s.residual_loss(),
        s.overhead(k),
        s.recovery_latency_mean,
        s.recovery_latency_max
    );
    let p = &o.profile;
    let _ = writeln!(
        out,
        "  measured: ber {:.2e} (design {:.2e}), bursty {}, erasure rate {:.3}, mean erasure run {:.2}",
        p.estimated_ber(),
        p.design_ber(),
        if p.is_bursty() { "yes" } else { "no" },
        p.erasure_rate(),
        p.mean_erasure_run()
    );
}

fn cmd_stream(args: &[String], out: &mut String, err: &mut String) -> i32 {
    let seed = flag_value(args, "seed")
        .map(|v| v.parse::<u64>())
        .transpose();
    let Ok(seed) = seed else {
        fail(err, "usage", "--seed must be an unsigned integer");
        return 2;
    };
    let seed = seed.unwrap_or(1);
    let bytes = match parse_bounded(args, "bytes", 16384, 1..=1 << 24) {
        Ok(v) => v,
        Err(e) => {
            fail(err, "usage", &e);
            return 2;
        }
    };
    let mut cfg = fec_stream::StreamConfig::static_8023df(seed);
    let parsed: Result<(), String> = (|| {
        cfg.depth = parse_bounded(args, "depth", cfg.depth, 1..=64)?;
        cfg.gen_size = parse_bounded(args, "gen-size", cfg.gen_size, 1..=64)?;
        cfg.repair = parse_bounded(args, "repair", cfg.repair, 0..=64)?;
        Ok(())
    })();
    if let Err(e) = parsed {
        fail(err, "usage", &e);
        return 2;
    }
    if cfg.repair > cfg.gen_size {
        fail(err, "usage", "--repair must not exceed --gen-size");
        return 2;
    }
    let payload = fec_stream::deterministic_payload(bytes, seed);
    let k = cfg.inner.data_len();
    let _ = writeln!(
        out,
        "stream: 802.3df (128,120), depth {}, gen size {}, repair {}, seed {seed}, {bytes} bytes",
        cfg.depth, cfg.gen_size, cfg.repair
    );

    if !has_flag(args, "adapt") {
        let o = fec_stream::run_stream(&payload, &cfg);
        print_stream_report(out, "static", &o, k);
        if !o.lost_words.is_empty() {
            let _ = writeln!(
                out,
                "  lost word indices (reported, zero-filled): {:?}",
                o.lost_words
            );
        }
        return 0;
    }

    let timeout = flag_value(args, "timeout")
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let acfg = fec_stream::AdaptConfig {
        timeout: Duration::from_secs(timeout),
        jobs: parse_jobs(args),
        simplify: has_flag(args, "simplify"),
        ..Default::default()
    };
    let a = match fec_stream::run_adaptive(&payload, &cfg, &acfg) {
        Ok(a) => a,
        Err(e) => {
            fail(err, e.kind(), &e.to_string());
            return synth_exit_code(&e);
        }
    };
    print_stream_report(out, "probe (first half, static code)", &a.probe, k);
    let ad = &a.adapted;
    let _ = writeln!(
        out,
        "adapted: ({}, {}) composite, depth {}, repair {} — sum_w {:.2}, {} iterations, {:.2} s",
        ad.code.codeword_len(),
        ad.code.data_len(),
        ad.depth,
        ad.repair,
        ad.sum_w,
        ad.iterations,
        ad.elapsed.as_secs_f64()
    );
    print_stream_report(
        out,
        "replay (second half, static code)",
        &a.static_replay,
        k,
    );
    print_stream_report(
        out,
        "replay (second half, adapted code)",
        &a.adapted_replay,
        ad.code.data_len(),
    );
    let sres = a.static_replay.stats.residual_loss();
    let ares = a.adapted_replay.stats.residual_loss();
    if ares < sres {
        let _ = writeln!(
            out,
            "adapted improves residual loss: yes ({sres:.4} -> {ares:.4})"
        );
        0
    } else {
        let _ = writeln!(
            out,
            "adapted improves residual loss: NO ({sres:.4} -> {ares:.4})"
        );
        fail(
            err,
            "no-improvement",
            &format!("adapted residual {ares:.4} not below static {sres:.4}"),
        );
        1
    }
}

fn cmd_trace_validate(args: &[String], out: &mut String, err: &mut String) -> i32 {
    let Some(path) = args.get(1).filter(|s| !s.starts_with("--")) else {
        fail(
            err,
            "usage",
            "trace-validate: missing <file.jsonl> argument",
        );
        return 2;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            fail(err, "usage", &format!("cannot read {path:?}: {e}"));
            return 2;
        }
    };
    match fec_trace::validate_jsonl(&text) {
        Ok(n) => {
            out.push_str(&format!("{path}: {n} records, schema OK\n"));
            0
        }
        Err(e) => {
            fail(err, "schema", &e);
            1
        }
    }
}

fn coeff_arg(g: &Generator) -> String {
    (0..g.data_len())
        .map(|r| {
            (0..g.check_len())
                .map(|c| if g.coefficients().get(r, c) { '1' } else { '0' })
                .collect::<String>()
        })
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("fec-cli-test-{}-{name}", std::process::id()))
    }

    // the trace collector is process-global, so tests that install one
    // must not overlap
    static TRACE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn help_and_unknown() {
        let (code, out, _) = run(&[]);
        assert_eq!(code, 0);
        assert!(out.contains("USAGE"));
        let (code, _, err) = run(&argv(&["bogus"]));
        assert_eq!(code, 2);
        assert!(err.contains("error: kind=usage"), "{err}");
        assert!(err.contains("unknown command"));
    }

    #[test]
    fn analyze_refutes_with_golden_certificate() {
        // the ISSUE acceptance example: Singleton-violating (8, 4, 6)
        let (code, out, err) = run(&argv(&[
            "analyze",
            "len_d(G0) = 4 && len_c(G0) = 4 && md(G0) = 6",
        ]));
        assert_eq!(code, 1, "{out}{err}");
        assert!(out.contains("G0: [8, 4] d >= 6 — INFEASIBLE"), "{out}");
        // golden certificate text: bound name + evaluated arithmetic
        assert!(
            out.contains(
                "no binary linear [8, 4, 6] code exists — singleton bound: \
                 d <= n - k + 1 = 8 - 4 + 1 = 5, but the spec requires d = 6"
            ),
            "{out}"
        );
        assert!(out.contains("verdict: infeasible"), "{out}");
        assert!(err.contains("error: kind=no-solution"), "{err}");
        assert!(err.contains("singleton"), "{err}");
    }

    #[test]
    fn analyze_reports_feasible_and_needs_search() {
        let (code, out, err) = run(&argv(&["analyze", "len_d(G0) = 4 && md(G0) = 3"]));
        assert_eq!(code, 0, "{out}{err}");
        assert!(out.contains("FEASIBLE (Gilbert–Varshamov"), "{out}");
        assert!(out.contains("verdict: trivially-feasible"), "{out}");
        assert!(out.contains("hash: fecspec-v1:"), "{out}");
        assert!(err.is_empty(), "{err}");
        // [10, 5, 4] sits in the open band between GV and the bounds
        let (code, out, _) = run(&argv(&[
            "analyze",
            "len_d(G0) = 5 && len_c(G0) = 5 && md(G0) = 4",
        ]));
        assert_eq!(code, 0, "{out}");
        assert!(
            out.contains("NEEDS SEARCH (best achievable distance in 3..=4)"),
            "{out}"
        );
        assert!(out.contains("verdict: needs-search"), "{out}");
    }

    #[test]
    fn analyze_prints_lints_and_canonical_form() {
        let (code, out, _) = run(&argv(&[
            "analyze",
            "md(G0) >= 2 && md(G0) >= 3 && len_d(G0) = 2 + 2",
        ]));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("canonical: "), "{out}");
        assert!(out.contains("len_d(G[0]) = 4"), "{out}");
        assert!(out.contains("md(G[0]) >= 3"), "{out}");
        assert!(!out.contains(">= 2"), "{out}");
    }

    #[test]
    fn analyze_error_classes_and_exit_codes() {
        // parse error → kind=parse, exit 2
        let (code, _, err) = run(&argv(&["analyze", "md(G0) ="]));
        assert_eq!(code, 2);
        assert!(err.contains("error: kind=parse"), "{err}");
        // type error → kind=type, exit 2
        let (code, _, err) = run(&argv(&["analyze", "md(G[-1]) = 3"]));
        assert_eq!(code, 2);
        assert!(err.contains("error: kind=type"), "{err}");
        // structurally unsupported → kind=unsupported, exit 2
        let (code, _, err) = run(&argv(&["analyze", "len_d(G0) = 4 && sum_w < 3"]));
        assert_eq!(code, 2);
        assert!(err.contains("error: kind=unsupported"), "{err}");
        // inconsistent → kind=inconsistent, exit 2
        let (code, _, err) = run(&argv(&[
            "analyze",
            "len_d(G0) = 4 && len_c(G0) >= 9 && len_c(G0) <= 2",
        ]));
        assert_eq!(code, 2);
        assert!(err.contains("error: kind=inconsistent"), "{err}");
        // missing argument → usage
        let (code, _, err) = run(&argv(&["analyze"]));
        assert_eq!(code, 2);
        assert!(err.contains("error: kind=usage"), "{err}");
    }

    #[test]
    fn analyze_max_check_narrows_the_window() {
        // at the default window [4 + 14 = 18] d = 5 is guaranteed;
        // with one check bit it is refuted outright
        let (code, _, _) = run(&argv(&["analyze", "len_d(G0) = 4 && md(G0) = 5"]));
        assert_eq!(code, 0);
        let (code, out, err) = run(&argv(&[
            "analyze",
            "len_d(G0) = 4 && md(G0) = 5",
            "--max-check=1",
        ]));
        assert_eq!(code, 1, "{out}");
        assert!(err.contains("error: kind=no-solution"), "{err}");
    }

    #[test]
    fn synth_produces_a_code() {
        let (code, out, err) = run(&argv(&[
            "synth",
            "len_d(G0) = 4 && md(G0) = 3 && len_c(G0) <= 4 && minimal(len_c(G0))",
            "--timeout=30",
        ]));
        assert_eq!(code, 0, "{out}{err}");
        assert!(out.contains("(7, 4) code"), "{out}");
        assert!(out.contains("coeff (for --coeff):"));
        assert!(err.is_empty(), "{err}");
    }

    #[test]
    fn synth_rejects_bad_property() {
        let (code, _, err) = run(&argv(&["synth", "md(G0) ="]));
        assert_eq!(code, 2);
        assert!(err.contains("error: kind=parse"), "{err}");
        assert!(err.contains("parse error"), "{err}");
    }

    #[test]
    fn synth_reports_infeasible() {
        let (code, _, err) = run(&argv(&[
            "synth",
            "len_d(G0) = 4 && len_c(G0) = 1 && md(G0) = 3",
            "--timeout=30",
        ]));
        assert_eq!(code, 1);
        assert!(err.contains("error: kind=no-solution"), "{err}");
        assert!(err.contains("no generator"), "{err}");
    }

    #[test]
    fn synth_timeout_exit_code() {
        // a zero-second deadline forces SynthError::Timeout → exit 3
        let (code, _, err) = run(&argv(&[
            "synth",
            "len_d(G0) = 8 && len_c(G0) = 5 && md(G0) = 4",
            "--timeout=0",
        ]));
        assert_eq!(code, 3, "{err}");
        assert!(err.contains("error: kind=timeout"), "{err}");
    }

    #[test]
    fn verify_holds_and_fails() {
        let coeff = "101/110/111/011";
        let (code, out, err) = run(&argv(&["verify", "md(G0) = 3", "--coeff", coeff]));
        assert_eq!(code, 0, "{out}{err}");
        assert!(out.contains("HOLDS"));
        let (code, out, _) = run(&argv(&["verify", "md(G0) = 4", "--coeff", coeff]));
        assert_eq!(code, 1);
        assert!(out.contains("FAILS"));
    }

    #[test]
    fn verify_with_proof_checking() {
        let coeff = "101/110/111/011";
        let (code, out, err) = run(&argv(&[
            "verify",
            "md(G0) = 3",
            "--coeff",
            coeff,
            "--check-proofs",
        ]));
        assert_eq!(code, 0, "{out}{err}");
        assert!(out.contains("HOLDS"), "{out}");
        assert!(out.contains("certificates:"), "{out}");
        assert!(out.contains("UNSAT answers certified"), "{out}");
        // without the flag no certificate line is printed
        let (_, out, _) = run(&argv(&["verify", "md(G0) = 3", "--coeff", coeff]));
        assert!(!out.contains("certificates:"), "{out}");
    }

    #[test]
    fn synth_with_proof_checking() {
        let (code, out, err) = run(&argv(&[
            "synth",
            "len_d(G0) = 4 && md(G0) = 3 && len_c(G0) <= 4 && minimal(len_c(G0))",
            "--timeout=30",
            "--check-proofs",
        ]));
        assert_eq!(code, 0, "{out}{err}");
        assert!(out.contains("(7, 4) code"), "{out}");
    }

    #[test]
    fn verify_with_jobs_portfolio() {
        let coeff = "101/110/111/011";
        let (code, out, err) = run(&argv(&[
            "verify",
            "md(G0) = 3",
            "--coeff",
            coeff,
            "--jobs=4",
            "--check-proofs",
        ]));
        assert_eq!(code, 0, "{out}{err}");
        assert!(out.contains("HOLDS"), "{out}");
        assert!(out.contains("portfolio: 4 workers"), "{out}");
        assert!(out.contains("winner worker"), "{out}");
        assert!(out.contains("certificates:"), "{out}");
        // single mode prints no portfolio summary
        let (_, out, _) = run(&argv(&["verify", "md(G0) = 3", "--coeff", coeff]));
        assert!(!out.contains("portfolio:"), "{out}");
    }

    #[test]
    fn synth_with_jobs_portfolio() {
        let (code, out, err) = run(&argv(&[
            "synth",
            "len_d(G0) = 4 && md(G0) = 3 && len_c(G0) <= 4 && minimal(len_c(G0))",
            "--timeout=30",
            "--jobs=2",
        ]));
        assert_eq!(code, 0, "{out}{err}");
        assert!(out.contains("(7, 4) code"), "{out}");
    }

    #[test]
    fn synth_no_incremental_reference_mode() {
        // the from-scratch reference mode must reach the same optimum,
        // and the two mode flags reject being combined
        let (code, out, err) = run(&argv(&[
            "synth",
            "len_d(G0) = 4 && md(G0) = 3 && len_c(G0) <= 4 && minimal(len_c(G0))",
            "--timeout=30",
            "--no-incremental",
        ]));
        assert_eq!(code, 0, "{out}{err}");
        assert!(out.contains("(7, 4) code"), "{out}");
        let (code, out, err) = run(&argv(&[
            "synth",
            "len_d(G0) = 4 && md(G0) = 3",
            "--incremental",
            "--no-incremental",
        ]));
        assert_eq!(code, 2, "{out}");
        assert!(err.contains("mutually exclusive"), "{err}");
        // --incremental alone is the default, spelled out
        let (code, out, err) = run(&argv(&[
            "synth",
            "len_d(G0) = 4 && md(G0) = 3 && len_c(G0) <= 4",
            "--timeout=30",
            "--incremental",
        ]));
        assert_eq!(code, 0, "{out}{err}");
        assert!(
            out.contains("(7, 4) code") || out.contains("(8, 4) code"),
            "{out}"
        );
    }

    #[test]
    fn verify_with_simplify() {
        let coeff = "101/110/111/011";
        // simplified answers must match plain ones, and proof checking
        // must still pass (simplifier steps are part of the DRAT stream)
        let (code, out, err) = run(&argv(&[
            "verify",
            "md(G0) = 3",
            "--coeff",
            coeff,
            "--simplify",
            "--check-proofs",
        ]));
        assert_eq!(code, 0, "{out}{err}");
        assert!(out.contains("HOLDS"), "{out}");
        assert!(out.contains("certificates:"), "{out}");
        let (code, out, _) = run(&argv(&[
            "verify",
            "md(G0) = 4",
            "--coeff",
            coeff,
            "--simplify",
        ]));
        assert_eq!(code, 1);
        assert!(out.contains("FAILS"), "{out}");
    }

    #[test]
    fn synth_with_simplify() {
        let (code, out, err) = run(&argv(&[
            "synth",
            "len_d(G0) = 4 && md(G0) = 3 && len_c(G0) <= 4 && minimal(len_c(G0))",
            "--timeout=30",
            "--simplify",
        ]));
        assert_eq!(code, 0, "{out}{err}");
        assert!(out.contains("(7, 4) code"), "{out}");
    }

    #[test]
    fn info_reports_distance() {
        let (code, out, _) = run(&argv(&["info", "--coeff", "101/110/111/011"]));
        assert_eq!(code, 0);
        assert!(out.contains("minimum distance 3"), "{out}");
        assert!(out.contains("corrects 1"));
    }

    #[test]
    fn emit_c_and_rust() {
        let (code, out, _) = run(&argv(&["emit", "--coeff", "11/01", "--lang=c"]));
        assert_eq!(code, 0);
        assert!(out.contains("uint64_t encode_checks"));
        let (code, out, _) = run(&argv(&["emit", "--coeff", "11/01", "--lang=rust"]));
        assert_eq!(code, 0);
        assert!(out.contains("pub fn encode_checks"));
        let (code, _, err) = run(&argv(&["emit", "--coeff", "11/01", "--lang=go"]));
        assert_eq!(code, 2);
        assert!(err.contains("error: kind=usage"), "{err}");
    }

    #[test]
    fn emit_minimize_is_certified_and_parseable() {
        // (12,5) shortened Hamming: enough overlap for real sharing
        let coeff = "10011/11010/01101/10110/01011/11100/00111/11001/10101/01110/11111/00011";
        let (code, out, _) = run(&argv(&["emit", "--coeff", coeff, "--minimize"]));
        assert_eq!(code, 0);
        assert!(out.contains("circuit form"), "{out}");
        // the emitted text itself re-validates
        let g = Generator::from_coeff_str(&coeff.replace('/', "\n")).unwrap();
        let rep = fec_circ::validate_source(&out, fec_circ::Lang::C, &g);
        assert!(rep.is_valid(), "{:?}", rep.diags);
        let (code, out, _) = run(&argv(&[
            "emit",
            "--coeff",
            coeff,
            "--minimize",
            "--lang=rust",
        ]));
        assert_eq!(code, 0);
        let rep = fec_circ::validate_source(&out, fec_circ::Lang::Rust, &g);
        assert!(rep.is_valid(), "{:?}", rep.diags);
    }

    #[test]
    fn lint_kernel_proves_all_internal_forms() {
        let (code, out, err) = run(&argv(&["lint-kernel", "--coeff", "101/110/111/011"]));
        assert_eq!(code, 0, "{out}{err}");
        for form in [
            "generator-circuit",
            "mask-kernel",
            "sparse-kernel",
            "naive-kernel",
            "emitted-c",
            "emitted-rust",
            "minimized-circuit",
        ] {
            assert!(
                out.contains(&format!("{form}: OK")),
                "{form} missing in {out}"
            );
        }
        assert!(out.contains("minimizer:"), "{out}");
    }

    #[test]
    fn lint_kernel_file_flags_defect_with_class_and_exit_1() {
        let g = Generator::from_coeff_str("101\n110\n111\n011").unwrap();
        let good = fec_codegen::emit_c(&g, false);
        let path = tmp_path("lint-good.c");
        std::fs::write(&path, &good).unwrap();
        let (code, out, _) = run(&argv(&[
            "lint-kernel",
            "--coeff",
            "101/110/111/011",
            "--file",
            path.to_str().unwrap(),
        ]));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("OK"), "{out}");
        // tamper: drop one term → missing-term, exit 1
        let bad = good.replacen("(d >> 0) ^ ", "", 1);
        assert_ne!(bad, good);
        std::fs::write(&path, &bad).unwrap();
        let (code, out, _) = run(&argv(&[
            "lint-kernel",
            "--coeff",
            "101/110/111/011",
            "--file",
            path.to_str().unwrap(),
        ]));
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("FAIL"), "{out}");
        assert!(out.contains("class=missing-term"), "{out}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn lint_kernel_usage_errors() {
        let (code, _, err) = run(&argv(&["lint-kernel"]));
        assert_eq!(code, 2);
        assert!(err.contains("error: kind=usage"), "{err}");
        let (code, _, err) = run(&argv(&[
            "lint-kernel",
            "--coeff",
            "11/01",
            "--file",
            "/nonexistent/kernel.c",
        ]));
        assert_eq!(code, 2);
        assert!(err.contains("cannot read"), "{err}");
        let (code, _, err) = run(&argv(&["lint-kernel", "--coeff", "11/01", "--lang=go"]));
        assert_eq!(code, 2);
        assert!(err.contains("unknown language"), "{err}");
    }

    #[test]
    fn encode_round_trip_with_fig2_data() {
        let (code, out, _) = run(&argv(&[
            "encode",
            "--coeff",
            "101/110/111/011",
            "--data",
            "0011",
        ]));
        assert_eq!(code, 0);
        assert_eq!(out.trim(), "0011100"); // the paper's Fig. 2 example
    }

    #[test]
    fn encode_length_mismatch() {
        let (code, _, err) = run(&argv(&[
            "encode",
            "--coeff",
            "101/110/111/011",
            "--data",
            "001",
        ]));
        assert_eq!(code, 2);
        assert!(err.contains("expects 4"), "{err}");
    }

    #[test]
    fn coeff_parsing_errors() {
        let (code, _, err) = run(&argv(&["info"]));
        assert_eq!(code, 2);
        assert!(err.contains("error: kind=usage"), "{err}");
        let (code, _, _) = run(&argv(&["info", "--coeff", "1x1"]));
        assert_eq!(code, 2);
    }

    #[test]
    fn stream_static_is_deterministic() {
        let args = argv(&["stream", "--seed=7", "--bytes=4096"]);
        let (code, out1, err) = run(&args);
        assert_eq!(code, 0, "{out1}{err}");
        assert!(out1.contains("residual loss"), "{out1}");
        assert!(out1.contains("measured: ber"), "{out1}");
        let (code, out2, _) = run(&args);
        assert_eq!(code, 0);
        assert_eq!(out1, out2, "same seed must be bit-identical");
        let (_, out3, _) = run(&argv(&["stream", "--seed=8", "--bytes=4096"]));
        assert_ne!(out1, out3, "different seed must change the run");
    }

    #[test]
    fn stream_usage_errors() {
        let (code, _, err) = run(&argv(&["stream", "--gen-size=0"]));
        assert_eq!(code, 2);
        assert!(err.contains("error: kind=usage"), "{err}");
        let (code, _, err) = run(&argv(&["stream", "--gen-size=8", "--repair=9"]));
        assert_eq!(code, 2);
        assert!(err.contains("must not exceed"), "{err}");
        let (code, _, err) = run(&argv(&["stream", "--bytes=zilch"]));
        assert_eq!(code, 2);
        assert!(err.contains("--bytes"), "{err}");
        let (code, _, err) = run(&argv(&["stream", "--seed=-3"]));
        assert_eq!(code, 2);
        assert!(err.contains("--seed"), "{err}");
    }

    #[test]
    fn stream_adapt_improves_residual_and_is_traced() {
        let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let metrics = tmp_path("stream-metrics.json");
        let jsonl = tmp_path("stream.jsonl");
        let (code, out, err) = run(&argv(&[
            "stream",
            "--adapt",
            "--seed=1",
            "--bytes=16384",
            &format!("--metrics-out={}", metrics.display()),
            &format!("--trace-jsonl={}", jsonl.display()),
        ]));
        assert_eq!(code, 0, "{out}{err}");
        assert!(out.contains("adapted improves residual loss: yes"), "{out}");
        assert!(out.contains("probe (first half, static code)"), "{out}");
        assert!(out.contains("composite, depth"), "{out}");
        // the stream counters flow through the fec-trace metrics report
        let report = std::fs::read_to_string(&metrics).unwrap();
        for counter in [
            "stream.packets_in",
            "stream.recovered",
            "stream.bursts_observed",
        ] {
            assert!(report.contains(counter), "{counter} missing in {report}");
        }
        assert!(report.contains("stream.run"), "{report}");
        // and the raw event stream passes schema validation
        let text = std::fs::read_to_string(&jsonl).unwrap();
        let n = fec_trace::validate_jsonl(&text).expect("schema-valid JSONL");
        assert!(n > 0);
        assert!(text.contains("stream.adapt"), "{text}");
        assert!(text.contains("stream.report"), "{text}");
        let _ = std::fs::remove_file(&metrics);
        let _ = std::fs::remove_file(&jsonl);
    }

    #[test]
    fn traced_verify_emits_valid_jsonl_and_metrics() {
        let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let jsonl = tmp_path("verify.jsonl");
        let metrics = tmp_path("verify-metrics.json");
        let (code, out, err) = run(&argv(&[
            "verify",
            "md(G0) = 3",
            "--coeff",
            "101/110/111/011",
            &format!("--trace-jsonl={}", jsonl.display()),
            &format!("--metrics-out={}", metrics.display()),
        ]));
        assert_eq!(code, 0, "{out}{err}");
        // the JSONL stream passes its own schema validator...
        let text = std::fs::read_to_string(&jsonl).unwrap();
        let n = fec_trace::validate_jsonl(&text).expect("schema-valid JSONL");
        assert!(n > 0, "expected events, got none");
        assert!(text.contains("verify.query"), "{text}");
        // ...and via the trace-validate subcommand
        let (code, out, err) = run(&argv(&["trace-validate", jsonl.to_str().unwrap()]));
        assert_eq!(code, 0, "{err}");
        assert!(out.contains("schema OK"), "{out}");
        // metrics report was written and mentions the verify span
        let report = std::fs::read_to_string(&metrics).unwrap();
        assert!(report.contains("verify.query"), "{report}");
        let _ = std::fs::remove_file(&jsonl);
        let _ = std::fs::remove_file(&metrics);
    }

    #[test]
    fn traced_synth_writes_chrome_trace() {
        let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let chrome = tmp_path("synth-chrome.json");
        let (code, _, err) = run(&argv(&[
            "synth",
            "len_d(G0) = 4 && md(G0) = 3 && len_c(G0) <= 4 && minimal(len_c(G0))",
            "--timeout=30",
            &format!("--trace-out={}", chrome.display()),
        ]));
        assert_eq!(code, 0, "{err}");
        let text = std::fs::read_to_string(&chrome).unwrap();
        // streaming Chrome trace: an array of trace_event objects
        assert!(text.trim_start().starts_with('['), "{text}");
        assert!(text.contains("\"ph\":"), "{text}");
        assert!(text.contains("cegis.run"), "{text}");
        let _ = std::fs::remove_file(&chrome);
    }

    #[test]
    fn trace_validate_rejects_garbage() {
        let path = tmp_path("garbage.jsonl");
        std::fs::write(&path, "{\"not\": \"a trace record\"}\n").unwrap();
        let (code, _, err) = run(&argv(&["trace-validate", path.to_str().unwrap()]));
        assert_eq!(code, 1);
        assert!(err.contains("error: kind=schema"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_trace_level_is_a_usage_error() {
        let (code, _, err) = run(&argv(&[
            "verify",
            "md(G0) = 3",
            "--coeff",
            "101/110/111/011",
            "--trace=loud",
        ]));
        assert_eq!(code, 2);
        assert!(err.contains("bad --trace level"), "{err}");
    }
}
