//! `fecsynth bench-compare`: the perf-trajectory gate.
//!
//! Validates every `BENCH_*.json` in the current directory against the
//! shared `bench_meta` schema (emitted by every fec-bench harness) and
//! diffs its metrics against the committed baseline snapshot in
//! `results/bench-baseline/`. Metrics are flattened to dotted paths
//! (`results.2.secs`, `solve_secs.after_preprocessing`) and classified
//! by name into direction-aware families, each with its own regression
//! threshold:
//!
//! - timings (`*_secs`, `*_us`, `*_ms`, `*_ns`, `*latency*`): lower is
//!   better, regression when the current value rises more than 10%
//! - quality ratios (`*speedup*`, `*reduction*`, `*fraction*`): higher
//!   is better, regression when the value drops more than 10%
//! - loss metrics (`*residual*`, `*loss*`, `*overhead*`): lower is
//!   better, regression when the value rises more than 10%
//! - booleans (`pass`, `gate_met`, `*_certified`, …): regression on
//!   any `true → false` flip
//! - everything else numeric: informational drift only, never a gate
//!
//! A metric present only in one side is informational (benchmarks may
//! grow fields); a *file* present only in the current set is flagged
//! as missing a baseline but does not fail the gate. Exit 1 on any
//! schema violation or threshold regression.

use fec_trace::{parse_json, Json};
use std::fmt::Write as _;
use std::path::Path;

use crate::{fail, has_flag};

/// Version the emitters stamp into `bench_meta.schema`; bump on
/// incompatible layout changes (mirrored by `fec_bench::BENCH_SCHEMA_VERSION`).
const SCHEMA_VERSION: f64 = 1.0;

/// Relative change beyond which a gated metric is a regression.
const THRESHOLD: f64 = 0.10;
/// Absolute slack: changes smaller than this never gate (guards tiny
/// denominators like a 7 ms preprocessing step or a 0.008 loss rate
/// against measurement noise).
const ABS_FLOOR: f64 = 1e-4;

/// Gated metric families, by flattened path.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Class {
    LowerBetter,
    HigherBetter,
    Info,
}

fn classify(path: &str) -> Class {
    let lower_timing = path.contains("secs")
        || ["_us", "_ms", "_ns"].iter().any(|s| path.ends_with(s))
        || path.contains("latency");
    let lower_loss =
        path.contains("residual") || path.contains("loss") || path.contains("overhead");
    let higher =
        path.contains("speedup") || path.contains("reduction") || path.contains("fraction");
    if lower_timing || lower_loss {
        Class::LowerBetter
    } else if higher {
        Class::HigherBetter
    } else {
        Class::Info
    }
}

/// Flattens numeric and boolean leaves to (dotted path, value) pairs,
/// skipping the `bench_meta` header (its cores/commit legitimately
/// differ between machines).
fn flatten(v: &Json, prefix: &str, nums: &mut Vec<(String, f64)>, bools: &mut Vec<(String, bool)>) {
    match v {
        Json::Num(n) => nums.push((prefix.to_string(), *n)),
        Json::Bool(b) => bools.push((prefix.to_string(), *b)),
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                flatten(item, &format!("{prefix}.{i}"), nums, bools);
            }
        }
        Json::Obj(m) => {
            for (k, val) in m {
                if prefix.is_empty() && k == "bench_meta" {
                    continue;
                }
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(val, &path, nums, bools);
            }
        }
        Json::Null | Json::Str(_) => {}
    }
}

/// Checks the shared `bench_meta` header (kept in sync with
/// `fec_bench::validate_bench_meta` — the CLI must not depend on the
/// harness crate).
fn check_meta(v: &Json) -> Result<(), String> {
    let m = v
        .get("bench_meta")
        .ok_or("missing \"bench_meta\" header (re-run the fec-bench emitter)")?;
    let num = |k: &str| {
        m.get(k)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("bench_meta: missing numeric {k:?}"))
    };
    let string = |k: &str| {
        m.get(k)
            .and_then(Json::as_str)
            .filter(|s| !s.is_empty())
            .ok_or_else(|| format!("bench_meta: missing string {k:?}"))
    };
    let schema = num("schema")?;
    if schema != SCHEMA_VERSION {
        return Err(format!(
            "bench_meta: schema {schema} (expected {SCHEMA_VERSION})"
        ));
    }
    if num("reps")? < 1.0 {
        return Err("bench_meta: reps must be >= 1".into());
    }
    num("cores")?;
    string("git_commit")?;
    string("rustc")?;
    Ok(())
}

/// One comparison verdict for a single metric.
struct Delta {
    path: String,
    baseline: f64,
    current: f64,
    regression: bool,
}

fn compare_metrics(baseline: &Json, current: &Json) -> (Vec<Delta>, Vec<String>) {
    let (mut bn, mut bb, mut cn, mut cb) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    flatten(baseline, "", &mut bn, &mut bb);
    flatten(current, "", &mut cn, &mut cb);
    let mut deltas = Vec::new();
    let mut notes = Vec::new();
    for (path, cur) in &cn {
        let Some((_, base)) = bn.iter().find(|(p, _)| p == path) else {
            notes.push(format!("new metric {path} = {cur}"));
            continue;
        };
        let (base, cur) = (*base, *cur);
        let diff = cur - base;
        if diff.abs() < ABS_FLOOR {
            continue;
        }
        let rel = if base.abs() > f64::EPSILON {
            diff / base
        } else {
            // a zero baseline has no meaningful relative change
            0.0
        };
        let regression = match classify(path) {
            Class::LowerBetter => rel > THRESHOLD,
            Class::HigherBetter => rel < -THRESHOLD,
            Class::Info => false,
        };
        if regression || rel.abs() > THRESHOLD {
            deltas.push(Delta {
                path: path.clone(),
                baseline: base,
                current: cur,
                regression,
            });
        }
    }
    for (path, cur) in &cb {
        match bb.iter().find(|(p, _)| p == path) {
            Some((_, true)) if !cur => deltas.push(Delta {
                path: path.clone(),
                baseline: 1.0,
                current: 0.0,
                regression: true,
            }),
            Some(_) => {}
            None => notes.push(format!("new metric {path} = {cur}")),
        }
    }
    (deltas, notes)
}

fn list_bench_files(dir: &Path) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            names.push(name);
        }
    }
    names.sort();
    Ok(names)
}

/// `fecsynth bench-compare <baseline-dir> <current-dir> [--json]`.
pub fn cmd_bench_compare(args: &[String], out: &mut String, err: &mut String) -> i32 {
    let positional: Vec<&String> = args[1..].iter().filter(|a| !a.starts_with("--")).collect();
    let [baseline_dir, current_dir] = positional[..] else {
        fail(
            err,
            "usage",
            "bench-compare: expected <baseline-dir> <current-dir>",
        );
        return 2;
    };
    let current_files = match list_bench_files(Path::new(current_dir)) {
        Ok(f) => f,
        Err(e) => {
            fail(err, "usage", &e);
            return 2;
        }
    };
    if current_files.is_empty() {
        fail(
            err,
            "usage",
            &format!("no BENCH_*.json files in {current_dir:?}"),
        );
        return 2;
    }
    let json_mode = has_flag(args, "json");
    let mut failures = 0usize;
    let mut jout = String::from("{\n  \"files\": [\n");
    for (fi, name) in current_files.iter().enumerate() {
        let cur_path = Path::new(current_dir).join(name);
        let cur = match std::fs::read_to_string(&cur_path)
            .map_err(|e| e.to_string())
            .and_then(|t| parse_json(&t).map_err(|e| e.to_string()))
        {
            Ok(v) => v,
            Err(e) => {
                fail(err, "schema", &format!("{name}: {e}"));
                failures += 1;
                continue;
            }
        };
        if let Err(e) = check_meta(&cur) {
            fail(err, "schema", &format!("{name}: {e}"));
            failures += 1;
            continue;
        }
        let base_path = Path::new(baseline_dir).join(name);
        let mut file_regressions = 0usize;
        let mut lines = String::new();
        match std::fs::read_to_string(&base_path) {
            Err(_) => {
                let _ = writeln!(
                    lines,
                    "  no baseline (new benchmark — commit one to {baseline_dir})"
                );
            }
            Ok(text) => match parse_json(&text) {
                Err(e) => {
                    fail(err, "schema", &format!("baseline {name}: {e}"));
                    failures += 1;
                    continue;
                }
                Ok(base) => {
                    let (deltas, notes) = compare_metrics(&base, &cur);
                    for d in &deltas {
                        let verdict = if d.regression {
                            "REGRESSION"
                        } else {
                            "changed"
                        };
                        let _ = writeln!(
                            lines,
                            "  {verdict}: {} {} -> {} ({:+.1}%)",
                            d.path,
                            d.baseline,
                            d.current,
                            100.0 * (d.current - d.baseline)
                                / if d.baseline.abs() > f64::EPSILON {
                                    d.baseline
                                } else {
                                    1.0
                                }
                        );
                        if d.regression {
                            file_regressions += 1;
                        }
                    }
                    for n in &notes {
                        let _ = writeln!(lines, "  note: {n}");
                    }
                }
            },
        }
        failures += file_regressions;
        let status = if file_regressions > 0 { "FAIL" } else { "ok" };
        let _ = writeln!(out, "{name}: {status}");
        out.push_str(&lines);
        if json_mode {
            let _ = writeln!(
                jout,
                "    {{\"file\": \"{name}\", \"status\": \"{status}\", \"regressions\": {file_regressions}}}{}",
                if fi + 1 < current_files.len() { "," } else { "" }
            );
        }
    }
    if json_mode {
        out.clear();
        let _ = write!(
            jout,
            "  ],\n  \"regressions\": {failures}, \"pass\": {}\n}}\n",
            failures == 0
        );
        out.push_str(&jout);
    }
    if failures > 0 {
        fail(
            err,
            "regression",
            &format!("{failures} regression(s) against {baseline_dir}"),
        );
        1
    } else {
        let _ = writeln!(
            out,
            "bench-compare: {} file(s), no regressions",
            current_files.len()
        );
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const META: &str = "\"bench_meta\": {\"schema\": 1, \"git_commit\": \"abc1234\", \"cores\": 8, \"reps\": 3, \"rustc\": \"rustc 1.75.0\"}";

    fn write_dir(dir: &Path, name: &str, body: &str) {
        std::fs::create_dir_all(dir).unwrap();
        std::fs::write(dir.join(name), body).unwrap();
    }

    fn run_compare(base: &Path, cur: &Path) -> (i32, String, String) {
        let args: Vec<String> = [
            "bench-compare",
            base.to_str().unwrap(),
            cur.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let (mut out, mut err) = (String::new(), String::new());
        let code = cmd_bench_compare(&args, &mut out, &mut err);
        (code, out, err)
    }

    fn temp_pair(tag: &str) -> (std::path::PathBuf, std::path::PathBuf) {
        let root = std::env::temp_dir().join(format!("fec_bc_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        (root.join("base"), root.join("cur"))
    }

    #[test]
    fn classifies_metric_families() {
        assert_eq!(classify("baseline_secs"), Class::LowerBetter);
        assert_eq!(
            classify("solve_secs.after_preprocessing"),
            Class::LowerBetter
        );
        assert_eq!(classify("results.0.secs"), Class::LowerBetter);
        assert_eq!(classify("probe.residual_loss"), Class::LowerBetter);
        assert_eq!(classify("disabled_overhead_pct"), Class::LowerBetter);
        assert_eq!(classify("results.1.speedup"), Class::HigherBetter);
        assert_eq!(classify("flagship.reduction"), Class::HigherBetter);
        assert_eq!(classify("fraction_decided"), Class::HigherBetter);
        assert_eq!(classify("points"), Class::Info);
    }

    #[test]
    fn injected_regression_fails_identical_passes() {
        let (base, cur) = temp_pair("inject");
        let good = format!("{{{META}, \"solve_secs\": 1.0, \"speedup\": 2.0, \"pass\": true}}");
        write_dir(&base, "BENCH_x.json", &good);
        write_dir(&cur, "BENCH_x.json", &good);
        let (code, out, _) = run_compare(&base, &cur);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("no regressions"));

        // +20% timing: regression
        let slow = format!("{{{META}, \"solve_secs\": 1.2, \"speedup\": 2.0, \"pass\": true}}");
        write_dir(&cur, "BENCH_x.json", &slow);
        let (code, out, err) = run_compare(&base, &cur);
        assert_eq!(code, 1, "{out}{err}");
        assert!(out.contains("REGRESSION"), "{out}");

        // -15% speedup: regression; a boolean flip also gates
        let worse = format!("{{{META}, \"solve_secs\": 1.0, \"speedup\": 1.7, \"pass\": false}}");
        write_dir(&cur, "BENCH_x.json", &worse);
        let (code, out, _) = run_compare(&base, &cur);
        assert_eq!(code, 1);
        assert!(out.contains("speedup") && out.contains("pass"), "{out}");

        // improvements in the right direction never gate
        let better = format!("{{{META}, \"solve_secs\": 0.5, \"speedup\": 9.0, \"pass\": true}}");
        write_dir(&cur, "BENCH_x.json", &better);
        let (code, out, _) = run_compare(&base, &cur);
        assert_eq!(code, 0, "{out}");
    }

    #[test]
    fn missing_bench_meta_is_a_schema_failure() {
        let (base, cur) = temp_pair("meta");
        write_dir(&cur, "BENCH_y.json", "{\"secs\": 1.0}");
        write_dir(&base, "BENCH_y.json", "{\"secs\": 1.0}");
        let (code, _, err) = run_compare(&base, &cur);
        assert_eq!(code, 1);
        assert!(err.contains("bench_meta"), "{err}");
    }

    #[test]
    fn new_benchmark_without_baseline_does_not_gate() {
        let (base, cur) = temp_pair("nobase");
        std::fs::create_dir_all(&base).unwrap();
        write_dir(&cur, "BENCH_z.json", &format!("{{{META}, \"secs\": 1.0}}"));
        let (code, out, _) = run_compare(&base, &cur);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("no baseline"), "{out}");
    }
}
