//! `fecsynth report`: post-run analysis of a `--trace-jsonl` stream.
//!
//! Replays the span tree recorded by `fec-trace` and attributes
//! wall-clock time to the pipeline's phases. Attribution works on
//! *self-time*: each span's duration minus the duration of its child
//! spans on the same thread, credited to the nearest enclosing span
//! whose name maps to a phase. The driver thread (the one carrying the
//! most top-level span time — the thread that blocks on solver calls)
//! yields the headline breakdown: its self-times partition the spans'
//! wall-clock exactly, so `synth + verify + simplify + proof-check +
//! portfolio + other + untraced == wall`. A portfolio solve's blocked
//! wait on the driver side lands in the `portfolio` phase, and the
//! workers' busy time shows up separately in the all-thread table.
//!
//! Also summarized: idle time of portfolio workers after they finish
//! while the slowest worker of the same query is still running (the
//! diagnosable half of a sub-1.0× speedup), and the watchdog's
//! progress/stall telemetry.

use fec_trace::{parse_json, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::{fail, has_flag};

/// Phase names, in report order. `other` and `untraced` are appended
/// by the renderers.
const PHASES: [&str; 5] = ["synth", "verify", "simplify", "proof-check", "portfolio"];

/// Maps a span name to its phase. Unmapped spans inherit the nearest
/// mapped ancestor's phase; with no mapped ancestor they count as
/// `other` (traced but unattributed).
fn phase_of(name: &str) -> Option<&'static str> {
    if name.starts_with("cegis.synth") {
        Some("synth")
    } else if name.starts_with("cegis.verify") || name.starts_with("verify.") {
        Some("verify")
    } else if name.starts_with("sat.simplify") {
        Some("simplify")
    } else if name.starts_with("drat.") || name.starts_with("cert.") {
        Some("proof-check")
    } else if name.starts_with("portfolio.") {
        Some("portfolio")
    } else {
        None
    }
}

/// One still-open span on a thread's stack.
struct Open {
    name: String,
    /// Accumulated duration of direct children (subtracted for self-time).
    child_us: u64,
    /// Own phase, or the phase inherited from the nearest mapped ancestor.
    phase: Option<&'static str>,
}

/// Everything the renderers need, extracted in one pass.
#[derive(Default)]
pub struct RunReport {
    pub records: u64,
    pub threads: usize,
    pub wall_us: u64,
    pub driver_tid: u64,
    /// Driver-thread self-time per phase (plus `other`).
    pub driver_self_us: BTreeMap<&'static str, u64>,
    /// Self-time per phase summed over every thread.
    pub busy_self_us: BTreeMap<&'static str, u64>,
    pub worker_spans: u64,
    pub portfolio_idle_us: u64,
    pub heartbeats: u64,
    pub stall_events: u64,
    pub max_stall_ms: u64,
}

impl RunReport {
    /// Driver self-time attributed to a *named* phase (excludes `other`).
    pub fn attributed_us(&self) -> u64 {
        PHASES
            .iter()
            .filter_map(|p| self.driver_self_us.get(p))
            .sum()
    }

    /// Driver wall-clock not covered by any span.
    pub fn untraced_us(&self) -> u64 {
        let traced: u64 = self.driver_self_us.values().sum();
        self.wall_us.saturating_sub(traced)
    }
}

/// Builds the report from validated JSONL text. Records are processed
/// in file order, which is the collector's dispatch order (sinks are
/// serialized behind one lock), so per-thread begin/end nesting is
/// well-formed.
pub fn analyze(text: &str) -> RunReport {
    let mut r = RunReport::default();
    let mut stacks: BTreeMap<u64, Vec<Open>> = BTreeMap::new();
    // per-tid: phase -> self us ("other" key for unmapped), and total
    // top-level span time (driver election)
    let mut self_us: BTreeMap<u64, BTreeMap<&'static str, u64>> = BTreeMap::new();
    let mut top_us: BTreeMap<u64, u64> = BTreeMap::new();
    let mut min_ts = u64::MAX;
    let mut max_ts = 0u64;
    // (begin, end) intervals for worker-idle accounting
    let mut solves: Vec<(u64, u64)> = Vec::new();
    let mut workers: Vec<(u64, u64)> = Vec::new();

    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(v) = parse_json(line) else { continue };
        let num = |k: &str| v.get(k).and_then(Json::as_num);
        let (Some(ts), Some(tid), Some(kind), Some(name)) = (
            num("ts_us"),
            num("tid"),
            v.get("kind").and_then(Json::as_str),
            v.get("name").and_then(Json::as_str),
        ) else {
            continue;
        };
        let (ts, tid) = (ts as u64, tid as u64);
        r.records += 1;
        min_ts = min_ts.min(ts);
        max_ts = max_ts.max(ts);
        let stack = stacks.entry(tid).or_default();
        match kind {
            "begin" => {
                let inherited = phase_of(name).or_else(|| stack.last().and_then(|o| o.phase));
                stack.push(Open {
                    name: name.to_string(),
                    child_us: 0,
                    phase: inherited,
                });
            }
            "end" => {
                let dur = num("dur_us").unwrap_or(0.0) as u64;
                // tolerate truncated traces: only pop a matching open
                if stack.last().is_some_and(|o| o.name == name) {
                    let open = stack.pop().expect("just checked");
                    let self_time = dur.saturating_sub(open.child_us);
                    let phase = open.phase.unwrap_or("other");
                    *self_us.entry(tid).or_default().entry(phase).or_default() += self_time;
                    match stack.last_mut() {
                        Some(parent) => parent.child_us += dur,
                        None => *top_us.entry(tid).or_default() += dur,
                    }
                }
                if name == "portfolio.solve" {
                    solves.push((ts.saturating_sub(dur), ts));
                } else if name == "portfolio.worker" {
                    r.worker_spans += 1;
                    workers.push((ts.saturating_sub(dur), ts));
                }
            }
            "progress" => {
                r.heartbeats += 1;
                if let Some(ms) = v
                    .get("fields")
                    .and_then(|f| f.get("stall_ms"))
                    .and_then(Json::as_num)
                {
                    r.max_stall_ms = r.max_stall_ms.max(ms as u64);
                }
            }
            "event" if name == "progress.stall" => r.stall_events += 1,
            _ => {}
        }
    }

    r.threads = stacks.len();
    r.wall_us = max_ts.saturating_sub(if min_ts == u64::MAX { 0 } else { min_ts });
    // the driver is the thread that spends the most time inside
    // top-level spans — the one sequencing solver queries
    r.driver_tid = top_us
        .iter()
        .max_by_key(|(_, &us)| us)
        .map_or(0, |(&tid, _)| tid);
    r.driver_self_us = self_us.remove(&r.driver_tid).unwrap_or_default();
    for per_tid in std::iter::once(&r.driver_self_us).chain(self_us.values()) {
        for (&phase, &us) in per_tid {
            *r.busy_self_us.entry(phase).or_default() += us;
        }
    }
    // a worker that finishes early idles until its query's slowest
    // worker releases the portfolio.solve span
    for &(wb, we) in &workers {
        if let Some(&(_, se)) = solves.iter().find(|&&(sb, se)| sb <= wb && wb <= se) {
            r.portfolio_idle_us += se.saturating_sub(we);
        }
    }
    r
}

fn secs(us: u64) -> f64 {
    us as f64 / 1e6
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// Renders the human-readable report.
pub fn render_text(r: &RunReport, path: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "report: {path} — {} records, {} threads, wall {:.3} s",
        r.records,
        r.threads,
        secs(r.wall_us)
    );
    let _ = writeln!(
        out,
        "driver-thread phase attribution (tid {}, self-time):",
        r.driver_tid
    );
    let row = |out: &mut String, name: &str, us: u64, wall: u64| {
        let _ = writeln!(
            out,
            "  {name:<12} {:>10.3} s  {:>5.1}%",
            secs(us),
            pct(us, wall)
        );
    };
    for phase in PHASES {
        row(
            &mut out,
            phase,
            r.driver_self_us.get(phase).copied().unwrap_or(0),
            r.wall_us,
        );
    }
    row(
        &mut out,
        "other",
        r.driver_self_us.get("other").copied().unwrap_or(0),
        r.wall_us,
    );
    row(&mut out, "untraced", r.untraced_us(), r.wall_us);
    let attributed = r.attributed_us();
    let _ = writeln!(
        out,
        "  attributed to named phases: {:.3} s ({:.1}% of wall)",
        secs(attributed),
        pct(attributed, r.wall_us)
    );
    let busy: u64 = r.busy_self_us.values().sum();
    if busy > 0 {
        let _ = writeln!(out, "all-thread busy self-time:");
        for phase in PHASES.iter().copied().chain(["other"]) {
            if let Some(&us) = r.busy_self_us.get(phase) {
                if us > 0 {
                    let _ = writeln!(out, "  {phase:<12} {:>10.3} s", secs(us));
                }
            }
        }
    }
    if r.worker_spans > 0 {
        let _ = writeln!(
            out,
            "portfolio: {} worker spans, {:.3} s idle after finishing (losers waiting on the winner)",
            r.worker_spans,
            secs(r.portfolio_idle_us)
        );
    }
    if r.heartbeats > 0 || r.stall_events > 0 {
        let _ = writeln!(
            out,
            "progress: {} heartbeats, {} stall episode(s), max observed stall {} ms",
            r.heartbeats, r.stall_events, r.max_stall_ms
        );
    }
    out
}

/// Renders the same breakdown as one JSON object.
pub fn render_json(r: &RunReport) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"records\": {}, \"threads\": {}, \"wall_us\": {}, \"driver_tid\": {},\n",
        r.records, r.threads, r.wall_us, r.driver_tid
    );
    let map =
        |out: &mut String, key: &str, m: &BTreeMap<&'static str, u64>, untraced: Option<u64>| {
            let _ = write!(out, "  \"{key}\": {{");
            let mut first = true;
            for phase in PHASES.iter().copied().chain(["other"]) {
                let us = m.get(phase).copied().unwrap_or(0);
                let _ = write!(out, "{}\"{phase}\": {us}", if first { "" } else { ", " });
                first = false;
            }
            if let Some(us) = untraced {
                let _ = write!(out, ", \"untraced\": {us}");
            }
            let _ = writeln!(out, "}},");
        };
    map(
        &mut out,
        "driver_self_us",
        &r.driver_self_us,
        Some(r.untraced_us()),
    );
    map(&mut out, "busy_self_us", &r.busy_self_us, None);
    let attributed = r.attributed_us();
    let _ = writeln!(
        out,
        "  \"attributed_us\": {attributed}, \"attributed_fraction\": {:.4},",
        if r.wall_us == 0 {
            0.0
        } else {
            attributed as f64 / r.wall_us as f64
        }
    );
    let _ = writeln!(
        out,
        "  \"portfolio\": {{\"worker_spans\": {}, \"idle_us\": {}}},",
        r.worker_spans, r.portfolio_idle_us
    );
    let _ = writeln!(
        out,
        "  \"progress\": {{\"heartbeats\": {}, \"stall_events\": {}, \"max_stall_ms\": {}}}",
        r.heartbeats, r.stall_events, r.max_stall_ms
    );
    out.push_str("}\n");
    out
}

/// `fecsynth report <trace.jsonl> [--json]`.
pub fn cmd_report(args: &[String], out: &mut String, err: &mut String) -> i32 {
    let Some(path) = args.get(1).filter(|s| !s.starts_with("--")) else {
        fail(err, "usage", "report: missing <trace.jsonl> argument");
        return 2;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            fail(err, "usage", &format!("cannot read {path:?}: {e}"));
            return 2;
        }
    };
    if let Err(e) = fec_trace::validate_jsonl(&text) {
        fail(err, "schema", &e);
        return 1;
    }
    let r = analyze(&text);
    if has_flag(args, "json") {
        out.push_str(&render_json(&r));
    } else {
        out.push_str(&render_text(&r, path));
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(ts: u64, tid: u64, kind: &str, name: &str, dur: Option<u64>) -> String {
        let extra = dur.map_or(String::new(), |d| format!(", \"dur_us\": {d}"));
        format!(
            "{{\"ts_us\": {ts}, \"tid\": {tid}, \"level\": \"info\", \"kind\": \"{kind}\", \"name\": \"{name}\"{extra}}}\n"
        )
    }

    #[test]
    fn self_time_attribution_partitions_wall() {
        // driver (tid 0): verify.query [0, 1000] containing
        // sat.simplify [100, 300] and portfolio.solve [400, 900];
        // worker (tid 1): portfolio.worker [410, 700]
        let mut t = String::new();
        t += &line(0, 0, "begin", "verify.query", None);
        t += &line(100, 0, "begin", "sat.simplify", None);
        t += &line(300, 0, "end", "sat.simplify", Some(200));
        t += &line(400, 0, "begin", "portfolio.solve", None);
        t += &line(410, 1, "begin", "portfolio.worker", None);
        t += &line(700, 1, "end", "portfolio.worker", Some(290));
        t += &line(900, 0, "end", "portfolio.solve", Some(500));
        t += &line(1000, 0, "end", "verify.query", Some(1000));
        let r = analyze(&t);
        assert_eq!(r.wall_us, 1000);
        assert_eq!(r.driver_tid, 0);
        assert_eq!(r.driver_self_us["verify"], 300); // 1000 - 200 - 500
        assert_eq!(r.driver_self_us["simplify"], 200);
        assert_eq!(r.driver_self_us["portfolio"], 500);
        assert_eq!(r.untraced_us(), 0);
        assert_eq!(r.attributed_us(), 1000);
        assert_eq!(r.worker_spans, 1);
        // worker finished at 700, solve released at 900
        assert_eq!(r.portfolio_idle_us, 200);
        assert_eq!(r.busy_self_us["portfolio"], 500 + 290);
    }

    #[test]
    fn unmapped_spans_inherit_nearest_mapped_ancestor() {
        let mut t = String::new();
        t += &line(0, 0, "begin", "cegis.run", None);
        t += &line(0, 0, "begin", "cegis.synth", None);
        t += &line(10, 0, "begin", "smt.solve", None);
        t += &line(500, 0, "end", "smt.solve", Some(490));
        t += &line(500, 0, "end", "cegis.synth", Some(500));
        t += &line(600, 0, "end", "cegis.run", Some(600));
        let r = analyze(&t);
        // smt.solve has no phase of its own but sits under cegis.synth
        assert_eq!(r.driver_self_us["synth"], 500);
        assert_eq!(r.driver_self_us["other"], 100); // cegis.run self
        assert_eq!(r.attributed_us(), 500);
    }

    #[test]
    fn progress_and_stall_records_are_summarized() {
        let mut t = String::new();
        t += "{\"ts_us\": 5, \"tid\": 2, \"level\": \"info\", \"kind\": \"progress\", \"name\": \"progress\", \"fields\": {\"stalled\": false, \"stall_ms\": 0}}\n";
        t += "{\"ts_us\": 9, \"tid\": 2, \"level\": \"warn\", \"kind\": \"event\", \"name\": \"progress.stall\", \"fields\": {\"idle_ms\": 31}}\n";
        t += "{\"ts_us\": 12, \"tid\": 2, \"level\": \"info\", \"kind\": \"progress\", \"name\": \"progress\", \"fields\": {\"stalled\": true, \"stall_ms\": 34}}\n";
        let r = analyze(&t);
        assert_eq!(r.heartbeats, 2);
        assert_eq!(r.stall_events, 1);
        assert_eq!(r.max_stall_ms, 34);
        let json = render_json(&r);
        fec_trace::parse_json(&json).expect("report JSON parses");
    }
}
