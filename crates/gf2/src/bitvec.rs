//! Packed bit vectors over GF(2).

use std::fmt;
use std::ops::{BitAndAssign, BitXorAssign};

const WORD_BITS: usize = 64;

/// A fixed-length vector of bits, packed 64 per `u64` word.
///
/// Bit `i` is stored at word `i / 64`, bit position `i % 64`
/// (least-significant-bit first). Trailing bits past `len` in the last
/// word are kept zero as an invariant, so word-level operations
/// (`count_ones`, XOR-folds) never see garbage.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// An all-zero vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// An all-one vector of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut v = Self::zeros(len);
        for w in &mut v.words {
            *w = u64::MAX;
        }
        v.mask_tail();
        v
    }

    /// Builds a vector from a slice of booleans, index 0 first.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            v.set(i, b);
        }
        v
    }

    /// Builds a `len`-bit vector from the low bits of `value`
    /// (bit `i` of the vector = bit `i` of `value`).
    ///
    /// # Panics
    /// Panics if `len > 128`.
    pub fn from_u128(value: u128, len: usize) -> Self {
        assert!(len <= 128, "from_u128 supports at most 128 bits");
        let mut v = Self::zeros(len);
        for i in 0..len {
            v.set(i, (value >> i) & 1 == 1);
        }
        v
    }

    /// Interprets the first `min(len, 128)` bits as an integer,
    /// bit `i` of the vector at bit `i` of the result.
    pub fn to_u128(&self) -> u128 {
        let mut out = 0u128;
        for i in 0..self.len.min(128) {
            if self.get(i) {
                out |= 1 << i;
            }
        }
        out
    }

    /// Parses a string of `0`/`1` characters (index 0 first).
    /// Whitespace and `_` are ignored. Returns `None` on any other char.
    pub fn from_bitstring(s: &str) -> Option<Self> {
        let mut bits = Vec::new();
        for ch in s.chars() {
            match ch {
                '0' => bits.push(false),
                '1' => bits.push(true),
                c if c.is_whitespace() || c == '_' => {}
                _ => return None,
            }
        }
        Some(Self::from_bools(&bits))
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the vector has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            self.words[i / WORD_BITS] |= mask;
        } else {
            self.words[i / WORD_BITS] &= !mask;
        }
    }

    /// Flips bit `i`, returning its new value.
    #[inline]
    pub fn flip(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] ^= 1u64 << (i % WORD_BITS);
        self.get(i)
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// GF(2) sum of all bits: `true` when an odd number are set.
    #[inline]
    pub fn parity(&self) -> bool {
        crate::parity_words(&self.words)
    }

    /// `true` when every bit is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// GF(2) dot product (AND then XOR-fold) with another vector.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn dot(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "dot: length mismatch");
        let mut acc = 0u64;
        for (a, b) in self.words.iter().zip(&other.words) {
            acc ^= a & b;
        }
        crate::parity64(acc)
    }

    /// Hamming distance to another vector of the same length.
    pub fn hamming_distance(&self, other: &BitVec) -> usize {
        assert_eq!(self.len, other.len, "hamming_distance: length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Indices of the set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let tz = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * WORD_BITS + tz)
                }
            })
        })
    }

    /// All bits as booleans, index 0 first.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Concatenates `other` after `self`.
    pub fn concat(&self, other: &BitVec) -> BitVec {
        let mut out = BitVec::zeros(self.len + other.len);
        for i in 0..self.len {
            out.set(i, self.get(i));
        }
        for i in 0..other.len {
            out.set(self.len + i, other.get(i));
        }
        out
    }

    /// The sub-vector of bits `range.start .. range.end`.
    pub fn slice(&self, range: std::ops::Range<usize>) -> BitVec {
        assert!(range.end <= self.len, "slice out of range");
        let mut out = BitVec::zeros(range.len());
        for (j, i) in range.enumerate() {
            out.set(j, self.get(i));
        }
        out
    }

    /// Underlying packed words (tail bits beyond `len` are zero).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    fn mask_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl BitXorAssign<&BitVec> for BitVec {
    /// GF(2) vector addition.
    fn bitxor_assign(&mut self, rhs: &BitVec) {
        assert_eq!(self.len, rhs.len, "xor: length mismatch");
        for (a, b) in self.words.iter_mut().zip(&rhs.words) {
            *a ^= b;
        }
    }
}

impl BitAndAssign<&BitVec> for BitVec {
    /// Component-wise GF(2) multiplication.
    fn bitand_assign(&mut self, rhs: &BitVec) {
        assert_eq!(self.len, rhs.len, "and: length mismatch");
        for (a, b) in self.words.iter_mut().zip(&rhs.words) {
            *a &= b;
        }
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec({})", self)
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(130);
        assert_eq!(z.len(), 130);
        assert_eq!(z.count_ones(), 0);
        assert!(z.is_zero());
        let o = BitVec::ones(130);
        assert_eq!(o.count_ones(), 130);
        assert!(!o.is_zero());
        // Tail invariant: word-level popcount must not see garbage.
        assert_eq!(o.words().iter().map(|w| w.count_ones()).sum::<u32>(), 130);
    }

    #[test]
    fn set_get_flip() {
        let mut v = BitVec::zeros(100);
        v.set(0, true);
        v.set(63, true);
        v.set(64, true);
        v.set(99, true);
        assert!(v.get(0) && v.get(63) && v.get(64) && v.get(99));
        assert!(!v.get(1) && !v.get(65));
        assert_eq!(v.count_ones(), 4);
        assert!(!v.flip(0));
        assert!(v.flip(1));
        assert_eq!(v.count_ones(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(8).get(8);
    }

    #[test]
    fn u128_round_trip() {
        let v = BitVec::from_u128(0xDEAD_BEEF_u128, 32);
        assert_eq!(v.to_u128(), 0xDEAD_BEEF);
        assert_eq!(v.len(), 32);
        let w = BitVec::from_u128(u128::MAX, 128);
        assert_eq!(w.to_u128(), u128::MAX);
    }

    #[test]
    fn bitstring_parse() {
        let v = BitVec::from_bitstring("0011 1_00").unwrap();
        assert_eq!(v.to_bools(), [false, false, true, true, true, false, false]);
        assert!(BitVec::from_bitstring("01x").is_none());
        assert_eq!(format!("{v}"), "0011100");
    }

    #[test]
    fn dot_product() {
        let a = BitVec::from_bitstring("1101").unwrap();
        let b = BitVec::from_bitstring("1011").unwrap();
        // overlap at indices 0 and 3 -> even -> 0
        assert!(!a.dot(&b));
        let c = BitVec::from_bitstring("1000").unwrap();
        assert!(a.dot(&c));
    }

    #[test]
    fn xor_and_distance() {
        let mut a = BitVec::from_bitstring("110010").unwrap();
        let b = BitVec::from_bitstring("011010").unwrap();
        assert_eq!(a.hamming_distance(&b), 2);
        a ^= &b;
        assert_eq!(format!("{a}"), "101000");
        a &= &b;
        assert_eq!(format!("{a}"), "001000");
    }

    #[test]
    fn iter_ones_crosses_word_boundary() {
        let mut v = BitVec::zeros(200);
        for i in [0, 5, 63, 64, 127, 128, 199] {
            v.set(i, true);
        }
        let ones: Vec<usize> = v.iter_ones().collect();
        assert_eq!(ones, [0, 5, 63, 64, 127, 128, 199]);
    }

    #[test]
    fn concat_and_slice() {
        let a = BitVec::from_bitstring("101").unwrap();
        let b = BitVec::from_bitstring("0110").unwrap();
        let c = a.concat(&b);
        assert_eq!(format!("{c}"), "1010110");
        assert_eq!(format!("{}", c.slice(3..7)), "0110");
        assert_eq!(c.slice(0..0).len(), 0);
    }

    #[test]
    fn parity_matches_count() {
        let v = BitVec::from_bitstring("1110001").unwrap();
        assert_eq!(v.parity(), v.count_ones() % 2 == 1);
    }

    proptest! {
        #[test]
        fn prop_round_trip_bools(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
            let v = BitVec::from_bools(&bits);
            prop_assert_eq!(v.to_bools(), bits);
        }

        #[test]
        fn prop_xor_is_involution(bits_a in proptest::collection::vec(any::<bool>(), 1..200),
                                  seed in any::<u64>()) {
            let b_bits: Vec<bool> = bits_a.iter().enumerate()
                .map(|(i, _)| (seed >> (i % 64)) & 1 == 1).collect();
            let a = BitVec::from_bools(&bits_a);
            let b = BitVec::from_bools(&b_bits);
            let mut x = a.clone();
            x ^= &b;
            x ^= &b;
            prop_assert_eq!(x, a);
        }

        #[test]
        fn prop_distance_is_xor_popcount(bits in proptest::collection::vec(any::<(bool, bool)>(), 0..200)) {
            let a = BitVec::from_bools(&bits.iter().map(|p| p.0).collect::<Vec<_>>());
            let b = BitVec::from_bools(&bits.iter().map(|p| p.1).collect::<Vec<_>>());
            let mut x = a.clone();
            x ^= &b;
            prop_assert_eq!(a.hamming_distance(&b), x.count_ones());
        }

        #[test]
        fn prop_dot_bilinear(n in 1usize..120, s1 in any::<u128>(), s2 in any::<u128>(), s3 in any::<u128>()) {
            let n = n.min(128);
            let a = BitVec::from_u128(s1, n);
            let b = BitVec::from_u128(s2, n);
            let c = BitVec::from_u128(s3, n);
            // (a ^ b) . c == (a.c) ^ (b.c)
            let mut ab = a.clone();
            ab ^= &b;
            prop_assert_eq!(ab.dot(&c), a.dot(&c) ^ b.dot(&c));
        }
    }
}
