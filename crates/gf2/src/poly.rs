//! Polynomials over GF(2), used for CRC computation in `fec-flate` and
//! as a convenience for constructing cyclic-code experiments.

use std::fmt;

/// A polynomial over GF(2) with degree < 128, stored as a bitmask:
/// bit `i` of `coeffs` is the coefficient of `x^i`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Gf2Poly {
    coeffs: u128,
}

impl Gf2Poly {
    /// The zero polynomial.
    pub const ZERO: Gf2Poly = Gf2Poly { coeffs: 0 };
    /// The constant polynomial 1.
    pub const ONE: Gf2Poly = Gf2Poly { coeffs: 1 };

    /// Builds from a coefficient bitmask (bit `i` = coefficient of `x^i`).
    pub const fn from_bits(coeffs: u128) -> Self {
        Gf2Poly { coeffs }
    }

    /// The monomial `x^d`.
    ///
    /// # Panics
    /// Panics if `d >= 128`.
    pub fn monomial(d: u32) -> Self {
        assert!(d < 128, "degree out of range");
        Gf2Poly { coeffs: 1 << d }
    }

    /// Coefficient bitmask.
    pub const fn bits(&self) -> u128 {
        self.coeffs
    }

    /// Degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<u32> {
        if self.coeffs == 0 {
            None
        } else {
            Some(127 - self.coeffs.leading_zeros())
        }
    }

    /// `true` when the polynomial has no non-trivial factors.
    ///
    /// Brute-force trial division — fine for the small degrees (< 32)
    /// used in experiments.
    pub fn is_irreducible(&self) -> bool {
        let Some(d) = self.degree() else { return false };
        if d == 0 {
            return false;
        }
        let mut f = 2u128; // x
        while Gf2Poly::from_bits(f).degree().unwrap() * 2 <= d {
            if (*self % Gf2Poly::from_bits(f)).coeffs == 0 {
                return false;
            }
            f += 1;
        }
        true
    }
}

/// Polynomial addition (XOR — addition in GF(2) is exclusive-or).
impl std::ops::Add for Gf2Poly {
    type Output = Gf2Poly;
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn add(self, other: Gf2Poly) -> Gf2Poly {
        Gf2Poly {
            coeffs: self.coeffs ^ other.coeffs,
        }
    }
}

/// Polynomial multiplication (carry-less), truncated to degree < 128.
///
/// # Panics
/// Panics if the true product would overflow 128 coefficient bits.
impl std::ops::Mul for Gf2Poly {
    type Output = Gf2Poly;
    fn mul(self, other: Gf2Poly) -> Gf2Poly {
        if let (Some(da), Some(db)) = (self.degree(), other.degree()) {
            assert!(da + db < 128, "product degree overflows");
        }
        let mut acc = 0u128;
        let mut a = self.coeffs;
        let mut shift = 0;
        while a != 0 {
            let tz = a.trailing_zeros();
            a >>= tz;
            shift += tz;
            acc ^= other.coeffs << shift;
            a &= !1;
        }
        Gf2Poly { coeffs: acc }
    }
}

/// Remainder of `self` modulo `modulus`.
///
/// # Panics
/// Panics if `modulus` is zero.
impl std::ops::Rem for Gf2Poly {
    type Output = Gf2Poly;
    fn rem(self, modulus: Gf2Poly) -> Gf2Poly {
        let md = modulus.degree().expect("division by zero polynomial");
        let mut r = self.coeffs;
        while let Some(rd) = Gf2Poly::from_bits(r).degree() {
            if rd < md {
                break;
            }
            r ^= modulus.coeffs << (rd - md);
        }
        Gf2Poly { coeffs: r }
    }
}

impl fmt::Debug for Gf2Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf2Poly({self})")
    }
}

impl fmt::Display for Gf2Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.coeffs == 0 {
            return write!(f, "0");
        }
        let mut first = true;
        for i in (0..128).rev() {
            if (self.coeffs >> i) & 1 == 1 {
                if !first {
                    write!(f, " + ")?;
                }
                match i {
                    0 => write!(f, "1")?,
                    1 => write!(f, "x")?,
                    _ => write!(f, "x^{i}")?,
                }
                first = false;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn degree_of_basics() {
        assert_eq!(Gf2Poly::ZERO.degree(), None);
        assert_eq!(Gf2Poly::ONE.degree(), Some(0));
        assert_eq!(Gf2Poly::monomial(5).degree(), Some(5));
    }

    #[test]
    fn mul_by_x_shifts() {
        let p = Gf2Poly::from_bits(0b1011); // x^3 + x + 1
        let q = p * Gf2Poly::monomial(1);
        assert_eq!(q.bits(), 0b10110);
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", Gf2Poly::from_bits(0b1011)), "x^3 + x + 1");
        assert_eq!(format!("{}", Gf2Poly::ZERO), "0");
    }

    #[test]
    fn rem_examples() {
        // (x^3 + x + 1) mod (x + 1): substitute x=1 -> 1+1+1 = 1
        let p = Gf2Poly::from_bits(0b1011);
        let m = Gf2Poly::from_bits(0b11);
        assert_eq!((p % m).bits(), 1);
        // exact division: x^2+1 = (x+1)^2 over GF(2)
        let sq = Gf2Poly::from_bits(0b101);
        assert_eq!((sq % m).bits(), 0);
    }

    #[test]
    fn irreducibility_of_known_polys() {
        // x^3 + x + 1 is the classic GF(8) generator
        assert!(Gf2Poly::from_bits(0b1011).is_irreducible());
        // x^2 + 1 = (x+1)^2 is reducible
        assert!(!Gf2Poly::from_bits(0b101).is_irreducible());
        // the IEEE CRC-32 polynomial is primitive, hence irreducible
        assert!(Gf2Poly::from_bits(0x104C11DB7).is_irreducible());
        assert!(!Gf2Poly::ZERO.is_irreducible());
    }

    proptest! {
        #[test]
        fn prop_mul_commutes(a in any::<u32>(), b in any::<u32>()) {
            let pa = Gf2Poly::from_bits(a as u128);
            let pb = Gf2Poly::from_bits(b as u128);
            prop_assert_eq!(pa * pb, pb * pa);
        }

        #[test]
        fn prop_rem_smaller_than_modulus(a in any::<u64>(), m in 2u32..u32::MAX) {
            let pa = Gf2Poly::from_bits(a as u128);
            let pm = Gf2Poly::from_bits(m as u128);
            let r = pa % pm;
            prop_assert!(r.degree().map_or(0, |d| d + 1) <= pm.degree().unwrap());
        }

        #[test]
        fn prop_mul_distributes_over_add(a in any::<u32>(), b in any::<u32>(), c in any::<u32>()) {
            let (pa, pb, pc) = (Gf2Poly::from_bits(a as u128),
                                Gf2Poly::from_bits(b as u128),
                                Gf2Poly::from_bits(c as u128));
            prop_assert_eq!((pa + pb) * pc, pa * pc + pb * pc);
        }
    }
}
