//! Dense bit matrices over GF(2), stored row-major as [`BitVec`] rows.

use crate::BitVec;
use std::fmt;

/// A dense `rows × cols` matrix over GF(2).
///
/// Rows are packed [`BitVec`]s, so row operations (the workhorse of
/// Gaussian elimination and of `vec * M` products) are word-parallel.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitMatrix {
    rows: Vec<BitVec>,
    cols: usize,
}

impl BitMatrix {
    /// An all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        BitMatrix {
            rows: (0..rows).map(|_| BitVec::zeros(cols)).collect(),
            cols,
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Builds a matrix from row slices of booleans.
    ///
    /// # Panics
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[&[bool]]) -> Self {
        let cols = rows.first().map_or(0, |r| r.len());
        let rows: Vec<BitVec> = rows
            .iter()
            .map(|r| {
                assert_eq!(r.len(), cols, "from_rows: ragged rows");
                BitVec::from_bools(r)
            })
            .collect();
        BitMatrix { rows, cols }
    }

    /// Builds a matrix from owned [`BitVec`] rows.
    ///
    /// # Panics
    /// Panics if rows have differing lengths.
    pub fn from_bitvec_rows(rows: Vec<BitVec>) -> Self {
        let cols = rows.first().map_or(0, |r| r.len());
        for r in &rows {
            assert_eq!(r.len(), cols, "from_bitvec_rows: ragged rows");
        }
        BitMatrix { rows, cols }
    }

    /// Parses a multi-line string of `0`/`1` rows, e.g. `"101\n010"`.
    /// Within a row, spaces and `_`/`|` separators are ignored.
    pub fn from_str_rows(s: &str) -> Option<Self> {
        let mut rows = Vec::new();
        for line in s.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let cleaned: String = line.chars().filter(|c| *c == '0' || *c == '1').collect();
            if line.chars().any(|c| !"01 |_\t".contains(c)) {
                return None;
            }
            rows.push(BitVec::from_bitstring(&cleaned)?);
        }
        let cols = rows.first().map_or(0, |r| r.len());
        if rows.iter().any(|r| r.len() != cols) {
            return None;
        }
        Some(BitMatrix { rows, cols })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads entry `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        self.rows[r].get(c)
    }

    /// Writes entry `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        self.rows[r].set(c, value);
    }

    /// Borrow of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &BitVec {
        &self.rows[r]
    }

    /// Column `c` as an owned vector.
    pub fn col(&self, c: usize) -> BitVec {
        let mut v = BitVec::zeros(self.rows());
        for (i, row) in self.rows.iter().enumerate() {
            v.set(i, row.get(c));
        }
        v
    }

    /// Total number of set bits.
    pub fn count_ones(&self) -> usize {
        self.rows.iter().map(BitVec::count_ones).sum()
    }

    /// `v * M` where `v` is a row vector of length `rows()`.
    /// Returns a row vector of length `cols()`.
    ///
    /// Computed as the XOR of the rows selected by set bits of `v`,
    /// which is word-parallel (no per-column loop).
    pub fn vec_mul(&self, v: &BitVec) -> BitVec {
        assert_eq!(v.len(), self.rows(), "vec_mul: dimension mismatch");
        let mut acc = BitVec::zeros(self.cols);
        for i in v.iter_ones() {
            acc ^= &self.rows[i];
        }
        acc
    }

    /// `M * v^T` where `v` is a column vector of length `cols()`.
    /// Returns a column vector of length `rows()`.
    pub fn mul_vec(&self, v: &BitVec) -> BitVec {
        assert_eq!(v.len(), self.cols, "mul_vec: dimension mismatch");
        let mut out = BitVec::zeros(self.rows());
        for (i, row) in self.rows.iter().enumerate() {
            out.set(i, row.dot(v));
        }
        out
    }

    /// Matrix product `self * other`.
    pub fn mat_mul(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!(self.cols, other.rows(), "mat_mul: dimension mismatch");
        let rows = self
            .rows
            .iter()
            .map(|r| other.transpose_mul_row(r))
            .collect();
        BitMatrix {
            rows,
            cols: other.cols,
        }
    }

    fn transpose_mul_row(&self, r: &BitVec) -> BitVec {
        // row r (len = self.rows) times self -> len self.cols
        let mut acc = BitVec::zeros(self.cols);
        for i in r.iter_ones() {
            acc ^= &self.rows[i];
        }
        acc
    }

    /// The transpose.
    pub fn transpose(&self) -> BitMatrix {
        let mut t = BitMatrix::zeros(self.cols, self.rows());
        for (r, row) in self.rows.iter().enumerate() {
            for c in row.iter_ones() {
                t.set(c, r, true);
            }
        }
        t
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    /// Panics if row counts differ.
    pub fn hstack(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!(self.rows(), other.rows(), "hstack: row count mismatch");
        let rows = self
            .rows
            .iter()
            .zip(&other.rows)
            .map(|(a, b)| a.concat(b))
            .collect();
        BitMatrix {
            rows,
            cols: self.cols + other.cols,
        }
    }

    /// Vertical concatenation (self on top).
    ///
    /// # Panics
    /// Panics if column counts differ.
    pub fn vstack(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!(self.cols, other.cols, "vstack: column count mismatch");
        let mut rows = self.rows.clone();
        rows.extend(other.rows.iter().cloned());
        BitMatrix {
            rows,
            cols: self.cols,
        }
    }

    /// The sub-matrix of columns `range`.
    pub fn col_slice(&self, range: std::ops::Range<usize>) -> BitMatrix {
        let rows = self.rows.iter().map(|r| r.slice(range.clone())).collect();
        BitMatrix {
            rows,
            cols: range.len(),
        }
    }

    /// Rank over GF(2), by Gaussian elimination on a copy.
    pub fn rank(&self) -> usize {
        let (reduced, _) = self.row_echelon();
        reduced.rows.iter().filter(|r| !r.is_zero()).count()
    }

    /// Reduced row-echelon form and the list of pivot columns.
    pub fn row_echelon(&self) -> (BitMatrix, Vec<usize>) {
        let mut m = self.clone();
        let mut pivots = Vec::new();
        let mut r = 0;
        for c in 0..m.cols {
            if r >= m.rows() {
                break;
            }
            // find a pivot row at or below r with a 1 in column c
            let Some(p) = (r..m.rows()).find(|&i| m.get(i, c)) else {
                continue;
            };
            m.rows.swap(r, p);
            // clear column c from every other row (full RREF)
            let pivot_row = m.rows[r].clone();
            for (i, row) in m.rows.iter_mut().enumerate() {
                if i != r && row.get(c) {
                    *row ^= &pivot_row;
                }
            }
            pivots.push(c);
            r += 1;
        }
        (m, pivots)
    }

    /// `true` if this is the identity matrix.
    pub fn is_identity(&self) -> bool {
        self.rows() == self.cols
            && self
                .rows
                .iter()
                .enumerate()
                .all(|(i, r)| r.count_ones() == 1 && r.get(i))
    }

    /// A basis of the null space: all `x` with `self * x^T = 0`.
    ///
    /// Each returned vector has length `cols()`. The null space is the
    /// GF(2) span of the returned basis.
    pub fn null_space(&self) -> Vec<BitVec> {
        let (rref, pivots) = self.row_echelon();
        let mut is_pivot = vec![false; self.cols];
        for &p in &pivots {
            is_pivot[p] = true;
        }
        let free: Vec<usize> = (0..self.cols).filter(|&c| !is_pivot[c]).collect();
        let mut basis = Vec::with_capacity(free.len());
        for &f in &free {
            let mut v = BitVec::zeros(self.cols);
            v.set(f, true);
            // back-substitute: pivot row i has its pivot at pivots[i]
            for (i, &p) in pivots.iter().enumerate() {
                if rref.get(i, f) {
                    v.set(p, true);
                }
            }
            basis.push(v);
        }
        basis
    }

    /// Iterator over the rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &BitVec> {
        self.rows.iter()
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix {}x{} [", self.rows(), self.cols)?;
        for r in &self.rows {
            writeln!(f, "  {r}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hamming74_g() -> BitMatrix {
        BitMatrix::from_str_rows(
            "1000|101
             0100|110
             0010|111
             0001|011",
        )
        .unwrap()
    }

    #[test]
    fn identity_properties() {
        let i = BitMatrix::identity(5);
        assert!(i.is_identity());
        assert_eq!(i.rank(), 5);
        assert_eq!(i.count_ones(), 5);
        assert!(!BitMatrix::zeros(3, 3).is_identity());
    }

    #[test]
    fn paper_fig2_encode() {
        // Fig. 2 of the paper: (0011) * G = (0011|100).
        let g = hamming74_g();
        let d = BitVec::from_bitstring("0011").unwrap();
        let w = g.vec_mul(&d);
        assert_eq!(format!("{w}"), "0011100");
    }

    #[test]
    fn paper_fig2_check() {
        // H = (P^T | I3); H * w^T = 0 for the valid codeword.
        let g = hamming74_g();
        let p = g.col_slice(4..7);
        let h = p.transpose().hstack(&BitMatrix::identity(3));
        let w = BitVec::from_bitstring("0011100").unwrap();
        assert!(h.mul_vec(&w).is_zero());
        // flipping one bit makes the syndrome equal that column of H
        let mut corrupted = w.clone();
        corrupted.flip(2);
        let syn = h.mul_vec(&corrupted);
        assert_eq!(syn, h.col(2));
    }

    #[test]
    fn transpose_involution() {
        let g = hamming74_g();
        assert_eq!(g.transpose().transpose(), g);
        assert_eq!(g.transpose().rows(), 7);
        assert_eq!(g.transpose().cols(), 4);
    }

    #[test]
    fn mat_mul_identity() {
        let g = hamming74_g();
        assert_eq!(BitMatrix::identity(4).mat_mul(&g), g);
        assert_eq!(g.mat_mul(&BitMatrix::identity(7)), g);
    }

    #[test]
    fn rank_and_echelon() {
        let m = BitMatrix::from_str_rows(
            "110
             011
             101",
        )
        .unwrap();
        // row3 = row1 + row2 over GF(2), so rank 2
        assert_eq!(m.rank(), 2);
        let (_, pivots) = m.row_echelon();
        assert_eq!(pivots, vec![0, 1]);
    }

    #[test]
    fn null_space_members_are_kernel_vectors() {
        let m = BitMatrix::from_str_rows(
            "110
             011
             101",
        )
        .unwrap();
        let ns = m.null_space();
        assert_eq!(ns.len(), 1); // cols - rank = 3 - 2
        for v in &ns {
            assert!(m.mul_vec(v).is_zero());
            assert!(!v.is_zero());
        }
    }

    #[test]
    fn hstack_vstack_shapes() {
        let a = BitMatrix::identity(2);
        let b = BitMatrix::zeros(2, 3);
        let h = a.hstack(&b);
        assert_eq!((h.rows(), h.cols()), (2, 5));
        let v = a.vstack(&BitMatrix::zeros(1, 2));
        assert_eq!((v.rows(), v.cols()), (3, 2));
        assert_eq!(h.col_slice(0..2), a);
    }

    #[test]
    fn col_extraction() {
        let g = hamming74_g();
        assert_eq!(format!("{}", g.col(4)), "1110");
        assert_eq!(format!("{}", g.col(0)), "1000");
    }

    #[test]
    fn from_str_rows_rejects_bad_input() {
        assert!(BitMatrix::from_str_rows("10\n1").is_none());
        assert!(BitMatrix::from_str_rows("1x0").is_none());
    }

    proptest! {
        #[test]
        fn prop_vec_mul_linear(seed_a in any::<u64>(), seed_b in any::<u64>(),
                               rows in 1usize..12, cols in 1usize..12, mseed in any::<u128>()) {
            // (a ^ b) G == aG ^ bG
            let mut m = BitMatrix::zeros(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    if (mseed >> ((r * cols + c) % 128)) & 1 == 1 {
                        m.set(r, c, true);
                    }
                }
            }
            let a = BitVec::from_u128(seed_a as u128, rows);
            let b = BitVec::from_u128(seed_b as u128, rows);
            let mut ab = a.clone();
            ab ^= &b;
            let mut lhs = m.vec_mul(&a);
            lhs ^= &m.vec_mul(&b);
            prop_assert_eq!(m.vec_mul(&ab), lhs);
        }

        #[test]
        fn prop_transpose_swaps_products(rows in 1usize..10, cols in 1usize..10,
                                         mseed in any::<u128>(), vseed in any::<u64>()) {
            let mut m = BitMatrix::zeros(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    if (mseed >> ((r * cols + c) % 128)) & 1 == 1 {
                        m.set(r, c, true);
                    }
                }
            }
            let v = BitVec::from_u128(vseed as u128, rows);
            // v * M == M^T * v^T
            prop_assert_eq!(m.vec_mul(&v), m.transpose().mul_vec(&v));
        }

        #[test]
        fn prop_rank_bounded(rows in 1usize..10, cols in 1usize..10, mseed in any::<u128>()) {
            let mut m = BitMatrix::zeros(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    if (mseed >> ((r * 3 + c * 7) % 128)) & 1 == 1 {
                        m.set(r, c, true);
                    }
                }
            }
            let rank = m.rank();
            prop_assert!(rank <= rows.min(cols));
            // rank-nullity over GF(2)
            prop_assert_eq!(m.null_space().len(), cols - rank);
        }
    }
}
