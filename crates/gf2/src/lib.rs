//! GF(2) linear algebra substrate.
//!
//! Everything in a Hamming code — data words, codewords, generator and
//! check matrices — lives in the two-element finite field GF(2), where
//! addition is XOR and multiplication is AND. This crate provides the
//! packed bit-vector and bit-matrix types the rest of the workspace is
//! built on, plus GF(2) polynomials (used by the CRC-32 in `fec-flate`).
//!
//! Representation: bits are packed 64 per `u64` word, least-significant
//! bit first, so bit `i` of a [`BitVec`] lives at word `i / 64`, bit
//! `i % 64`. All row operations on [`BitMatrix`] are word-parallel.
//!
//! # Example
//!
//! ```
//! use fec_gf2::{BitMatrix, BitVec};
//!
//! // The coefficient matrix P of the classic Hamming (7,4) code.
//! let p = BitMatrix::from_rows(&[
//!     &[true, false, true],
//!     &[true, true, false],
//!     &[true, true, true],
//!     &[false, true, true],
//! ]);
//! let g = BitMatrix::identity(4).hstack(&p);
//! let d = BitVec::from_bools(&[false, false, true, true]);
//! let w = g.vec_mul(&d);
//! assert_eq!(w.to_bools(), [false, false, true, true, true, false, false]);
//! ```

#![forbid(unsafe_code)]

mod bitvec;
mod matrix;
mod poly;

pub use bitvec::BitVec;
pub use matrix::BitMatrix;
pub use poly::Gf2Poly;

/// Parity (XOR-fold) of a `u64`: `true` when an odd number of bits are set.
///
/// This is GF(2) summation of the 64 bits and the inner loop of every
/// encode/check kernel in the workspace.
#[inline]
pub fn parity64(x: u64) -> bool {
    x.count_ones() & 1 == 1
}

/// Parity of a slice of words, i.e. XOR-fold over all bits.
#[inline]
pub fn parity_words(words: &[u64]) -> bool {
    let mut acc = 0u64;
    for &w in words {
        acc ^= w;
    }
    parity64(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity64_basics() {
        assert!(!parity64(0));
        assert!(parity64(1));
        assert!(!parity64(0b11));
        assert!(parity64(0b111));
        assert!(!parity64(u64::MAX));
    }

    #[test]
    fn parity_words_folds_across_words() {
        assert!(parity_words(&[1, 0, 0]));
        assert!(!parity_words(&[1, 1]));
        assert!(parity_words(&[u64::MAX, u64::MAX, 1]));
    }
}
