//! DIMACS CNF parsing and emission, for interoperability and test fixtures.

use crate::types::{Lit, Var};

/// A parsed CNF: number of variables and the clause list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cnf {
    pub num_vars: usize,
    pub clauses: Vec<Vec<Lit>>,
}

/// Parses DIMACS CNF text.
///
/// Accepts comment lines (`c ...`), an optional `p cnf V C` header, and
/// zero-terminated clause lines. Returns an error string describing the
/// first malformed token.
pub fn parse_dimacs(text: &str) -> Result<Cnf, String> {
    let mut num_vars = 0usize;
    let mut clauses = Vec::new();
    let mut current: Vec<Lit> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "cnf" {
                return Err(format!("line {}: malformed problem line", lineno + 1));
            }
            num_vars = parts[1]
                .parse()
                .map_err(|_| format!("line {}: bad variable count", lineno + 1))?;
            continue;
        }
        for tok in line.split_whitespace() {
            let n: i64 = tok
                .parse()
                .map_err(|_| format!("line {}: bad literal {tok:?}", lineno + 1))?;
            if n == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                let idx = (n.unsigned_abs() - 1) as usize;
                num_vars = num_vars.max(idx + 1);
                current.push(Lit::with_sign(Var::from_index(idx), n > 0));
            }
        }
    }
    if !current.is_empty() {
        clauses.push(current);
    }
    Ok(Cnf { num_vars, clauses })
}

/// Emits DIMACS CNF text for a clause list over `num_vars` variables.
pub fn to_dimacs(num_vars: usize, clauses: &[Vec<Lit>]) -> String {
    let mut out = format!("p cnf {} {}\n", num_vars, clauses.len());
    for c in clauses {
        for l in c {
            out.push_str(&l.to_string());
            out.push(' ');
        }
        out.push_str("0\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SolveResult, Solver};

    #[test]
    fn parse_simple() {
        let cnf = parse_dimacs("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        assert_eq!(cnf.clauses[0][1], Lit::neg(Var::from_index(1)));
    }

    #[test]
    fn parse_without_header_infers_vars() {
        let cnf = parse_dimacs("1 5 0\n-5 0").unwrap();
        assert_eq!(cnf.num_vars, 5);
        assert_eq!(cnf.clauses.len(), 2);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_dimacs("1 x 0").is_err());
        assert!(parse_dimacs("p cnf oops 2").is_err());
    }

    #[test]
    fn round_trip() {
        let text = "p cnf 2 2\n1 -2 0\n-1 2 0\n";
        let cnf = parse_dimacs(text).unwrap();
        assert_eq!(to_dimacs(cnf.num_vars, &cnf.clauses), text);
    }

    #[test]
    fn parsed_instance_solves() {
        let cnf = parse_dimacs("p cnf 2 3\n1 2 0\n-1 0\n-2 -1 0\n").unwrap();
        let mut s = Solver::new();
        for _ in 0..cnf.num_vars {
            s.new_var();
        }
        for c in &cnf.clauses {
            s.add_clause(c);
        }
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.value(Var::from_index(0)), Some(false));
        assert_eq!(s.value(Var::from_index(1)), Some(true));
    }
}
