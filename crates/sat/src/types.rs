//! Variables and literals.

use std::fmt;

/// A propositional variable, numbered from 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// The variable's 0-based index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a variable from a 0-based index.
    #[inline]
    pub fn from_index(i: usize) -> Var {
        Var(u32::try_from(i).expect("variable index overflow"))
    }
}

/// A literal: a variable or its negation.
///
/// Encoded as `2 * var + sign` where `sign == 1` means negated, so a
/// literal doubles as an index into watcher lists.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The positive literal of `v`.
    #[inline]
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    #[inline]
    pub fn neg(v: Var) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// `v` if `sign` is true, else `¬v`.
    #[inline]
    pub fn with_sign(v: Var, sign: bool) -> Lit {
        if sign {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` for a positive literal.
    #[inline]
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// Index usable for watcher/assignment tables (0..2*nvars).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}v{}",
            if self.is_pos() { "" } else { "¬" },
            self.0 >> 1
        )
    }
}

impl fmt::Display for Lit {
    /// DIMACS-style: 1-based, negative when negated.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = (self.0 >> 1) as i64 + 1;
        write!(f, "{}", if self.is_pos() { v } else { -v })
    }
}

/// Three-valued assignment state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum LBool {
    True,
    False,
    Undef,
}

impl LBool {
    #[inline]
    pub(crate) fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let v = Var::from_index(3);
        let p = Lit::pos(v);
        let n = Lit::neg(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_pos());
        assert!(!n.is_pos());
        assert_eq!(!p, n);
        assert_eq!(!!p, p);
        assert_eq!(p.index(), 6);
        assert_eq!(n.index(), 7);
    }

    #[test]
    fn with_sign() {
        let v = Var::from_index(0);
        assert_eq!(Lit::with_sign(v, true), Lit::pos(v));
        assert_eq!(Lit::with_sign(v, false), Lit::neg(v));
    }

    #[test]
    fn dimacs_display() {
        let v = Var::from_index(4);
        assert_eq!(format!("{}", Lit::pos(v)), "5");
        assert_eq!(format!("{}", Lit::neg(v)), "-5");
    }
}
