//! Clause storage.

use crate::types::Lit;

/// Index of a clause in the solver's clause database.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub(crate) struct ClauseRef(pub(crate) u32);

/// A disjunction of literals.
///
/// The first two literals are the *watched* pair; the solver maintains
/// the invariant that, unless the clause is satisfied, neither watched
/// literal is false (or the clause is unit/conflicting and on the
/// propagation queue).
#[derive(Debug)]
pub(crate) struct Clause {
    pub lits: Vec<Lit>,
    /// Learnt clauses may be garbage-collected; problem clauses may not.
    pub learnt: bool,
    /// Bump-and-decay activity for learnt-clause retention.
    pub activity: f64,
    /// Literal-block distance at learning time (glue level).
    pub lbd: u32,
    /// Tombstone flag set by database reduction; skipped by all scans.
    pub deleted: bool,
}

impl Clause {
    pub fn new(lits: Vec<Lit>, learnt: bool, lbd: u32) -> Clause {
        Clause {
            lits,
            learnt,
            activity: 0.0,
            lbd,
            deleted: false,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.lits.len()
    }
}

/// A watcher entry: the clause plus a *blocker* literal from it.
/// If the blocker is already true the clause is satisfied and the
/// watcher scan can skip loading the clause at all.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Watcher {
    pub cref: ClauseRef,
    pub blocker: Lit,
}
