//! A deliberately simple DPLL solver used as a *test oracle*.
//!
//! The CDCL engine in [`crate::Solver`] is intricate enough that its own
//! tests can't be trusted to cover every interaction of watches,
//! learning, and backjumping. This module provides a slow but obviously
//! correct solver; property tests cross-validate the two on random
//! instances (see `tests/` in this crate and in `fec-smt`).

use crate::types::{Lit, Var};

/// Result of the reference solver: a model, or `None` for UNSAT.
pub fn solve(num_vars: usize, clauses: &[Vec<Lit>]) -> Option<Vec<bool>> {
    let mut assignment: Vec<Option<bool>> = vec![None; num_vars];
    if dpll(clauses, &mut assignment) {
        Some(assignment.into_iter().map(|a| a.unwrap_or(false)).collect())
    } else {
        None
    }
}

/// `true` iff `model` satisfies every clause.
pub fn check_model(clauses: &[Vec<Lit>], model: &[bool]) -> bool {
    clauses.iter().all(|c| {
        c.iter()
            .any(|l| model.get(l.var().index()).copied() == Some(l.is_pos()))
    })
}

fn dpll(clauses: &[Vec<Lit>], assignment: &mut Vec<Option<bool>>) -> bool {
    // unit propagation to fixpoint
    let mut trail: Vec<Var> = Vec::new();
    loop {
        let mut unit: Option<Lit> = None;
        for c in clauses {
            let mut unassigned: Option<Lit> = None;
            let mut n_unassigned = 0;
            let mut satisfied = false;
            for &l in c {
                match assignment[l.var().index()] {
                    None => {
                        n_unassigned += 1;
                        unassigned = Some(l);
                    }
                    Some(v) if v == l.is_pos() => {
                        satisfied = true;
                        break;
                    }
                    Some(_) => {}
                }
            }
            if satisfied {
                continue;
            }
            match n_unassigned {
                0 => {
                    // conflict: undo propagation and fail
                    for v in trail {
                        assignment[v.index()] = None;
                    }
                    return false;
                }
                1 => {
                    unit = unassigned;
                    break;
                }
                _ => {}
            }
        }
        match unit {
            Some(l) => {
                assignment[l.var().index()] = Some(l.is_pos());
                trail.push(l.var());
            }
            None => break,
        }
    }
    // pick a branch variable
    let branch = assignment.iter().position(|a| a.is_none());
    let Some(v) = branch else {
        return true; // fully assigned, no conflict
    };
    for value in [true, false] {
        assignment[v] = Some(value);
        if dpll(clauses, assignment) {
            return true;
        }
        assignment[v] = None;
    }
    // undo propagation done at this node before returning
    for var in trail {
        assignment[var.index()] = None;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SolveResult, Solver};
    use proptest::prelude::*;

    fn l(x: i32) -> Lit {
        Lit::with_sign(Var::from_index((x.unsigned_abs() - 1) as usize), x > 0)
    }

    #[test]
    fn reference_sat_and_unsat() {
        assert!(solve(2, &[vec![l(1), l(2)], vec![l(-1)]]).is_some());
        assert!(solve(1, &[vec![l(1)], vec![l(-1)]]).is_none());
    }

    #[test]
    fn reference_model_checks_out() {
        let clauses = vec![vec![l(1), l(2)], vec![l(-1), l(3)], vec![l(-3), l(-2)]];
        let m = solve(3, &clauses).unwrap();
        assert!(check_model(&clauses, &m));
    }

    /// Random 3-SAT instances: CDCL and DPLL must agree, and SAT models
    /// must actually satisfy the clauses.
    fn random_instance(seed: u64, nv: usize, nc: usize) -> Vec<Vec<Lit>> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..nc)
            .map(|_| {
                (0..3)
                    .map(|_| {
                        let v = (next() as usize) % nv;
                        Lit::with_sign(Var::from_index(v), next() % 2 == 0)
                    })
                    .collect()
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_cdcl_agrees_with_reference(seed in any::<u64>(), nv in 3usize..10, nc in 1usize..40) {
            let clauses = random_instance(seed, nv, nc);
            let reference = solve(nv, &clauses);
            let mut s = Solver::new();
            for _ in 0..nv {
                s.new_var();
            }
            let mut ok = true;
            for c in &clauses {
                ok = s.add_clause(c);
                if !ok {
                    break;
                }
            }
            let cdcl = if ok { s.solve(&[]) } else { SolveResult::Unsat };
            match (reference, cdcl) {
                (Some(_), SolveResult::Sat) => {
                    let model: Vec<bool> = (0..nv)
                        .map(|i| s.value(Var::from_index(i)).unwrap_or(false))
                        .collect();
                    prop_assert!(check_model(&clauses, &model), "CDCL model invalid");
                }
                (None, SolveResult::Unsat) => {}
                (r, c) => prop_assert!(false, "disagreement: reference={:?} cdcl={:?}", r.is_some(), c),
            }
        }

        #[test]
        fn prop_cdcl_agrees_under_assumptions(seed in any::<u64>(), nv in 3usize..8, nc in 1usize..25) {
            let clauses = random_instance(seed, nv, nc);
            // assumption: first var true
            let assumption = Lit::pos(Var::from_index(0));
            let mut with_assumption = clauses.clone();
            with_assumption.push(vec![assumption]);
            let reference = solve(nv, &with_assumption);
            let mut s = Solver::new();
            for _ in 0..nv {
                s.new_var();
            }
            let mut ok = true;
            for c in &clauses {
                ok = s.add_clause(c);
                if !ok {
                    break;
                }
            }
            let cdcl = if ok { s.solve(&[assumption]) } else { SolveResult::Unsat };
            prop_assert_eq!(reference.is_some(), cdcl == SolveResult::Sat);
        }
    }
}
