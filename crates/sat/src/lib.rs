//! A from-scratch CDCL SAT solver.
//!
//! This is the solving engine underneath the `fec-smt` theory layer and,
//! in turn, the CEGIS synthesizer in `fec-synth`. It replaces the two Z3
//! instances used by the paper (see DESIGN.md for the substitution
//! argument: every formula the paper builds is finite-domain, so
//! bit-level CDCL search is a complete decision procedure for them).
//!
//! Features:
//! - two-literal watching with blocker literals,
//! - first-UIP conflict analysis with clause minimization,
//! - EVSIDS branching with phase saving,
//! - Luby or geometric restarts (every heuristic knob is a public
//!   [`SolverConfig`] field, the substrate for portfolio
//!   diversification in `fec-portfolio`),
//! - LBD-based learnt-clause database reduction,
//! - solving under assumptions (the substrate for push/pop scopes in
//!   `fec-smt`), with failed-assumption extraction,
//! - conflict and wall-clock budgets (the paper's 120 s solver timeout),
//! - cooperative cancellation via an atomic stop flag checked inside
//!   the propagation loop ([`Solver::set_stop_flag`]),
//! - learned-clause export/import hooks for portfolio clause sharing
//!   ([`Solver::set_export_hook`] / [`Solver::set_import_hook`]),
//! - optional DRAT proof logging (see [`proof`]), checked independently
//!   by the `fec-drat` crate,
//! - a SatELite-style pre-/inprocessing pipeline (bounded variable
//!   elimination, subsumption/strengthening, failed-literal probing,
//!   clause vivification — see [`simplify`] and [`SimplifyConfig`]),
//!   off by default, with solution reconstruction and RUP-only proof
//!   logging so certification keeps working unchanged.
//!
//! # Example
//!
//! ```
//! use fec_sat::{Solver, Lit, SolveResult};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
//! s.add_clause(&[Lit::neg(a)]);
//! assert_eq!(s.solve(&[]), SolveResult::Sat);
//! assert_eq!(s.value(b), Some(true));
//! ```

#![forbid(unsafe_code)]

mod clause;
mod config;
mod dimacs;
mod heap;
pub mod proof;
pub mod reference;
pub mod simplify;
mod solver;
mod types;

pub use config::{PhaseInit, RestartPolicy, SimplifyConfig, SolverConfig};
pub use dimacs::{parse_dimacs, to_dimacs};
pub use proof::{DratTextLogger, MemoryProofLogger, ProofLogger, ProofStep, TeeProofLogger};
pub use solver::{Budget, ExportHook, ImportHook, SolveResult, Solver, SolverStats};
pub use types::{Lit, Var};
