//! A from-scratch CDCL SAT solver.
//!
//! This is the solving engine underneath the `fec-smt` theory layer and,
//! in turn, the CEGIS synthesizer in `fec-synth`. It replaces the two Z3
//! instances used by the paper (see DESIGN.md for the substitution
//! argument: every formula the paper builds is finite-domain, so
//! bit-level CDCL search is a complete decision procedure for them).
//!
//! Features:
//! - two-literal watching with blocker literals,
//! - first-UIP conflict analysis with clause minimization,
//! - EVSIDS branching with phase saving,
//! - Luby restarts,
//! - LBD-based learnt-clause database reduction,
//! - solving under assumptions (the substrate for push/pop scopes in
//!   `fec-smt`), with failed-assumption extraction,
//! - conflict and wall-clock budgets (the paper's 120 s solver timeout),
//! - optional DRAT proof logging (see [`proof`]), checked independently
//!   by the `fec-drat` crate.
//!
//! # Example
//!
//! ```
//! use fec_sat::{Solver, Lit, SolveResult};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
//! s.add_clause(&[Lit::neg(a)]);
//! assert_eq!(s.solve(&[]), SolveResult::Sat);
//! assert_eq!(s.value(b), Some(true));
//! ```

mod clause;
mod dimacs;
mod heap;
pub mod proof;
pub mod reference;
mod solver;
mod types;

pub use dimacs::{parse_dimacs, to_dimacs};
pub use proof::{DratTextLogger, MemoryProofLogger, ProofLogger, ProofStep, TeeProofLogger};
pub use solver::{Budget, SolveResult, Solver, SolverStats};
pub use types::{Lit, Var};
