//! The simplification applier: runs the SatELite-style pipeline
//! (cleanup, subsumption/strengthening, bounded variable elimination,
//! failed-literal probing, clause vivification) against the solver's
//! clause database, watch lists, and proof stream.
//!
//! The *planning* logic lives in [`crate::simplify`] as pure functions
//! over literal vectors; this module owns the stateful half: replaying
//! plans onto the attached clauses, keeping the DRAT stream sound
//! (every derived clause is logged as a `Learn` *while its parents are
//! still live*, and only then are the parents deleted — so every step
//! is RUP and the checker needs no RAT support), maintaining the
//! solution-reconstruction stack, and restoring eliminated variables
//! when incremental use re-introduces them.
//!
//! Every pass runs at decision level 0 on a propagation fixpoint.
//! Level-0 reasons are cleared before each phase so clauses can be
//! deleted or rebuilt without dangling reason references — conflict
//! analysis never resolves on level-0 literals, so the cleared reasons
//! are never read by the search.

use super::*;
use crate::simplify::{bve_resolvents, plan_subsumption, SubsumeAction};

impl Solver {
    /// Runs one simplification pass on demand, independent of the
    /// `solve` loop (used by preprocessing benchmarks and tests).
    ///
    /// `frozen` literals — e.g. assumptions of a *future* `solve` call
    /// or activation literals — are protected from elimination for
    /// this pass; variables frozen via [`Solver::freeze_var`] are
    /// always protected. Returns `false` when simplification refutes
    /// the clause set outright.
    pub fn preprocess(&mut self, frozen: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        for &l in frozen {
            if l.var().index() < self.num_vars() && self.eliminated[l.var().index()] {
                self.restore_var(l.var());
            }
        }
        if !self.ok {
            return false;
        }
        self.simplify_dirty = false;
        self.simplify_run(frozen)
    }

    /// One full pipeline pass. `assumptions` are protected from
    /// elimination (they must remain decidable literals). Returns
    /// `false` iff the clause set became unsatisfiable.
    pub(super) fn simplify_run(&mut self, assumptions: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok {
            return false;
        }
        let cfg = self.config.simplify;
        if !(cfg.bve || cfg.subsume || cfg.probe || cfg.vivify) {
            return true;
        }
        let _span = fec_trace::span!(fec_trace::Level::Debug, "sat.simplify");
        let before = self.stats;
        // reach the level-0 fixpoint before looking at any clause
        if self.propagate().is_some() {
            self.log_learn(&[]);
            self.ok = false;
            return false;
        }
        if self.should_stop() {
            return true;
        }
        // assumption variables of this call are frozen for the pass
        let mut protect = self.frozen.clone();
        for &a in assumptions {
            if a.var().index() < protect.len() {
                protect[a.var().index()] = true;
            }
        }
        let mut cleaned_at = usize::MAX; // force the first cleanup
        for _ in 0..cfg.rounds.max(1) {
            if self.should_stop() {
                return true;
            }
            let mut changed = false;
            if !self.cleanup_pass(&mut cleaned_at) {
                return false;
            }
            if cfg.subsume && !self.subsume_pass(&mut changed) {
                return false;
            }
            if self.should_stop() {
                return true;
            }
            if cfg.bve && !self.bve_pass(&protect, &mut changed) {
                return false;
            }
            if !changed {
                break;
            }
        }
        if cfg.probe && !self.should_stop() && !self.probe_pass() {
            return false;
        }
        if cfg.vivify && !self.should_stop() && !self.vivify_pass() {
            return false;
        }
        if !self.cleanup_pass(&mut cleaned_at) {
            return false;
        }
        self.stats.simplify_passes += 1;
        fec_trace::counter!(
            fec_trace::Level::Debug,
            "sat.simplify.eliminated_vars",
            self.stats.eliminated_vars - before.eliminated_vars
        );
        fec_trace::counter!(
            fec_trace::Level::Debug,
            "sat.simplify.subsumed",
            self.stats.subsumed_clauses - before.subsumed_clauses
        );
        fec_trace::counter!(
            fec_trace::Level::Debug,
            "sat.simplify.strengthened",
            self.stats.strengthened_clauses - before.strengthened_clauses
        );
        fec_trace::counter!(
            fec_trace::Level::Debug,
            "sat.simplify.failed_literals",
            self.stats.failed_literals - before.failed_literals
        );
        fec_trace::counter!(
            fec_trace::Level::Debug,
            "sat.simplify.vivified",
            self.stats.vivified_clauses - before.vivified_clauses
        );
        fec_trace::event!(
            fec_trace::Level::Debug,
            "sat.simplify",
            "eliminated_vars" => self.stats.eliminated_vars,
            "subsumed" => self.stats.subsumed_clauses,
            "strengthened" => self.stats.strengthened_clauses,
            "failed_literals" => self.stats.failed_literals,
            "vivified" => self.stats.vivified_clauses,
            "passes" => self.stats.simplify_passes,
            "active_vars" => self.num_active_vars() as u64,
            "live_clauses" => self.num_clauses() as u64,
        );
        #[cfg(debug_assertions)]
        self.check_invariants();
        self.ok
    }

    /// Level-0 facts need no reasons; clearing them lets a pass delete
    /// or rebuild any clause without leaving dangling reason refs.
    /// Safe because conflict analysis, minimization, and assumption
    /// tracing all skip level-0 literals before reading a reason.
    fn clear_level0_reasons(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        for i in 0..self.trail.len() {
            let v = self.trail[i].var().index();
            self.reason[v] = INVALID_CLAUSE;
        }
    }

    /// Tombstones clause `idx`, emitting the proof deletion. Only
    /// learnt deletions count into `deleted_clauses` — that statistic
    /// drives the learnt-DB reduction schedule.
    fn simplify_delete(&mut self, idx: usize) {
        debug_assert!(!self.clauses[idx].deleted);
        if self.proof.is_some() {
            let lits = self.clauses[idx].lits.clone();
            if let Some(p) = self.proof.as_deref_mut() {
                p.delete(&lits);
            }
        }
        self.clauses[idx].deleted = true;
        if self.clauses[idx].learnt {
            self.stats.deleted_clauses += 1;
        }
    }

    /// Removes clauses satisfied at level 0 and strips falsified
    /// literals from the rest. At a level-0 fixpoint an unsatisfied
    /// live clause has both watched literals unassigned, so the strip
    /// never produces a unit; the stripped clause replaces the
    /// original via tombstone + re-attach, keeping watcher blockers
    /// pointing at literals the clause still contains.
    fn cleanup_pass(&mut self, cleaned_at: &mut usize) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        // satisfied clauses and false literals only appear when the
        // level-0 trail grows; an unchanged trail means the previous
        // cleanup's work still stands and the full DB rebuild can be
        // skipped (deletions by subsumption/BVE are already tombstoned)
        if *cleaned_at == self.trail.len() {
            return self.ok;
        }
        self.clear_level0_reasons();
        for idx in 0..self.clauses.len() {
            if self.clauses[idx].deleted {
                continue;
            }
            if self.clauses[idx]
                .lits
                .iter()
                .any(|&l| self.lit_value(l) == LBool::True)
            {
                self.simplify_delete(idx);
                continue;
            }
            if self.clauses[idx]
                .lits
                .iter()
                .any(|&l| self.lit_value(l) == LBool::False)
            {
                let kept: Vec<Lit> = self.clauses[idx]
                    .lits
                    .iter()
                    .copied()
                    .filter(|&l| self.lit_value(l) != LBool::False)
                    .collect();
                debug_assert!(
                    kept.len() >= 2,
                    "watched literals of an unsatisfied clause are unassigned at a fixpoint"
                );
                // RUP: the kept form plus the level-0 units falsify
                // the original clause
                self.log_learn(&kept);
                let learnt = self.clauses[idx].learnt;
                let lbd = self.clauses[idx].lbd.min(kept.len() as u32);
                self.simplify_delete(idx);
                self.attach_clause(Clause::new(kept, learnt, lbd));
            }
        }
        *cleaned_at = self.trail.len();
        self.ok
    }

    /// Backward subsumption + self-subsuming resolution: snapshots the
    /// live clauses, lets [`plan_subsumption`] compute a fixpoint plan,
    /// and replays it onto the database in plan order — which is
    /// exactly the order that keeps every `Learn` RUP over the live
    /// checker state.
    fn subsume_pass(&mut self, changed: &mut bool) -> bool {
        self.clear_level0_reasons();
        let mut attached: Vec<Option<usize>> = Vec::new();
        let mut cur: Vec<Vec<Lit>> = Vec::new();
        let mut snap: Vec<Option<Vec<Lit>>> = Vec::new();
        let mut learnt: Vec<bool> = Vec::new();
        for (i, c) in self.clauses.iter().enumerate() {
            if c.deleted {
                continue;
            }
            attached.push(Some(i));
            cur.push(c.lits.clone());
            snap.push(Some(c.lits.clone()));
            learnt.push(c.learnt);
        }
        let mut budget = self.config.simplify.subsume_budget;
        let actions = plan_subsumption(&mut snap, &mut learnt, self.num_vars(), &mut budget);
        if actions.is_empty() {
            return true;
        }
        *changed = true;
        let mut pending_units: Vec<Lit> = Vec::new();
        for act in actions {
            match act {
                SubsumeAction::Promote { target } => {
                    // a learnt clause about to erase an irredundant one
                    // becomes irredundant itself, or a later learnt-DB
                    // reduction could drop the only remaining witness
                    if let Some(idx) = attached[target as usize] {
                        self.clauses[idx].learnt = false;
                    }
                }
                SubsumeAction::Delete { target, .. } => {
                    self.stats.subsumed_clauses += 1;
                    // a slot already reduced to a pending unit has no
                    // attached clause left to delete; the unit stands
                    if let Some(idx) = attached[target as usize].take() {
                        self.simplify_delete(idx);
                    }
                }
                SubsumeAction::Strengthen { target, drop, .. } => {
                    let t = target as usize;
                    self.stats.strengthened_clauses += 1;
                    let mut kept = cur[t].clone();
                    kept.retain(|&l| l != drop);
                    if kept.is_empty() {
                        // strengthening a pending unit against its own
                        // negation: the formula is refuted
                        self.log_learn(&[]);
                        self.ok = false;
                        return false;
                    }
                    // Learn first (RUP while the strengthener and the
                    // old form are both live), then delete the old form
                    self.log_learn(&kept);
                    if let Some(p) = self.proof.as_deref_mut() {
                        p.delete(&cur[t]);
                    }
                    if let Some(idx) = attached[t].take() {
                        let learnt_flag = self.clauses[idx].learnt;
                        let lbd = self.clauses[idx].lbd.min(kept.len() as u32);
                        self.clauses[idx].deleted = true;
                        if self.clauses[idx].learnt {
                            self.stats.deleted_clauses += 1;
                        }
                        if kept.len() >= 2 {
                            let cref = self.attach_clause(Clause::new(
                                kept.clone(),
                                learnt_flag,
                                lbd.max(1),
                            ));
                            attached[t] = Some(cref.0 as usize);
                        } else {
                            pending_units.push(kept[0]);
                        }
                    } else if kept.len() == 1 {
                        pending_units.push(kept[0]);
                    }
                    cur[t] = kept;
                }
            }
        }
        for l in pending_units {
            match self.lit_value(l) {
                LBool::True => {}
                LBool::False => {
                    self.log_learn(&[]);
                    self.ok = false;
                    return false;
                }
                LBool::Undef => self.uncheck_enqueue(l, INVALID_CLAUSE),
            }
        }
        if self.propagate().is_some() {
            self.log_learn(&[]);
            self.ok = false;
            return false;
        }
        self.ok
    }

    /// Bounded variable elimination. Candidates are tried cheapest
    /// first (smallest pos×neg occurrence product); an elimination is
    /// taken only when [`bve_resolvents`] accepts it under the growth
    /// and clause-size cutoffs. Learnt clauses over the variable are
    /// not resolved — they are consequences, so they are simply
    /// deleted with it. A unit resolvent ends the pass early (the
    /// outer rounds loop re-runs cleanup and subsumption first).
    fn bve_pass(&mut self, protect: &[bool], changed: &mut bool) -> bool {
        self.clear_level0_reasons();
        let cfg = self.config.simplify;
        let mut occ = crate::simplify::OccIndex::new(self.num_vars());
        for (i, c) in self.clauses.iter().enumerate() {
            if !c.deleted {
                occ.insert(i as u32, &c.lits);
            }
        }
        let mut cands: Vec<Var> = (0..self.num_vars())
            .map(Var::from_index)
            .filter(|v| {
                let i = v.index();
                !protect[i] && !self.eliminated[i] && self.assigns[i] == LBool::Undef
            })
            .collect();
        cands.sort_by_key(|&v| occ.count(Lit::pos(v)) * occ.count(Lit::neg(v)));
        for v in cands {
            if self.should_stop() {
                return true;
            }
            if self.assigns[v.index()] != LBool::Undef {
                continue; // assigned by an earlier unit resolvent
            }
            let mut pos: Vec<Vec<Lit>> = Vec::new();
            let mut neg: Vec<Vec<Lit>> = Vec::new();
            let mut parents: Vec<u32> = Vec::new();
            let mut redundant: Vec<u32> = Vec::new();
            for &phase in &[Lit::pos(v), Lit::neg(v)] {
                for &ci in occ.occs(phase) {
                    let c = &self.clauses[ci as usize];
                    debug_assert!(!c.deleted);
                    if c.learnt {
                        redundant.push(ci);
                    } else {
                        parents.push(ci);
                        if phase.is_pos() {
                            pos.push(c.lits.clone());
                        } else {
                            neg.push(c.lits.clone());
                        }
                    }
                }
            }
            if pos.len() > cfg.bve_occ_limit || neg.len() > cfg.bve_occ_limit {
                continue;
            }
            let Some(resolvents) =
                bve_resolvents(v, &pos, &neg, cfg.bve_grow, cfg.bve_clause_limit)
            else {
                continue;
            };
            // derived clauses first: every resolvent is RUP while both
            // parents are still live (negating it makes them unit on v
            // and ¬v), the parent deletions follow
            let mut unit_resolvents: Vec<Lit> = Vec::new();
            for r in &resolvents {
                self.log_learn(r);
                if r.len() >= 2 {
                    let cref = self.attach_clause(Clause::new(r.clone(), false, 0));
                    occ.insert(cref.0, r);
                } else {
                    unit_resolvents.push(r[0]);
                }
            }
            let mut stored: Vec<Vec<Lit>> = Vec::with_capacity(pos.len() + neg.len());
            stored.extend(pos);
            stored.extend(neg);
            for &ci in parents.iter().chain(&redundant) {
                let lits = self.clauses[ci as usize].lits.clone();
                occ.remove(ci, &lits);
                self.simplify_delete(ci as usize);
            }
            self.recon.push(v, stored);
            self.eliminated[v.index()] = true;
            self.num_eliminated += 1;
            self.stats.eliminated_vars += 1;
            *changed = true;
            if !unit_resolvents.is_empty() {
                for l in unit_resolvents {
                    match self.lit_value(l) {
                        LBool::True => {}
                        LBool::False => {
                            self.log_learn(&[]);
                            self.ok = false;
                            return false;
                        }
                        LBool::Undef => self.uncheck_enqueue(l, INVALID_CLAUSE),
                    }
                }
                if self.propagate().is_some() {
                    self.log_learn(&[]);
                    self.ok = false;
                    return false;
                }
                // the assignment invalidated the occurrence snapshot
                // for every satisfied/shortened clause — restart the
                // round instead of resolving against stale lists
                return self.ok;
            }
        }
        self.ok
    }

    /// Failed-literal probing: assume each unassigned literal on a
    /// scratch decision level; a conflict proves its negation as a
    /// level-0 unit (RUP by the very propagation that found it).
    fn probe_pass(&mut self) -> bool {
        self.clear_level0_reasons();
        // Only a probe that immediately forces another literal can
        // fail, and at a level-0 fixpoint the only clauses one fresh
        // assignment can reduce to units are binary ones — so the
        // worthwhile probes are exactly the negations of literals
        // occurring in live binary clauses. Everything else would pay
        // a full propagate to learn nothing.
        let mut worthwhile = vec![false; 2 * self.num_vars()];
        for c in &self.clauses {
            if c.deleted || c.lits.len() != 2 {
                continue;
            }
            for &l in &c.lits {
                worthwhile[(!l).index()] = true;
            }
        }
        let mut budget = self.config.simplify.probe_budget;
        for vi in 0..self.num_vars() {
            if budget == 0 || self.should_stop() {
                break;
            }
            if self.assigns[vi] != LBool::Undef || self.eliminated[vi] {
                continue;
            }
            let v = Var::from_index(vi);
            for &probe in &[Lit::pos(v), Lit::neg(v)] {
                if budget == 0 {
                    break;
                }
                if !worthwhile[probe.index()] {
                    continue;
                }
                budget -= 1;
                if self.lit_value(probe) != LBool::Undef {
                    break; // fixed by the failure of the other phase
                }
                self.trail_lim.push(self.trail.len());
                self.uncheck_enqueue(probe, INVALID_CLAUSE);
                let conflicted = self.propagate().is_some();
                self.backtrack(0);
                if self.should_stop() {
                    return true;
                }
                if conflicted {
                    self.stats.failed_literals += 1;
                    let unit = !probe;
                    self.log_learn(&[unit]);
                    match self.lit_value(unit) {
                        LBool::True => {}
                        LBool::False => {
                            self.log_learn(&[]);
                            self.ok = false;
                            return false;
                        }
                        LBool::Undef => self.uncheck_enqueue(unit, INVALID_CLAUSE),
                    }
                    if self.propagate().is_some() {
                        self.log_learn(&[]);
                        self.ok = false;
                        return false;
                    }
                }
            }
        }
        self.ok
    }

    /// Clause vivification (distillation): assume the negations of a
    /// clause's literals one at a time; a conflict or an implied
    /// literal proves a shorter (or at worst equal) clause that is RUP
    /// by construction, and a literal implied *false* can be dropped.
    fn vivify_pass(&mut self) -> bool {
        self.clear_level0_reasons();
        let mut budget = self.config.simplify.vivify_budget;
        for idx in 0..self.clauses.len() {
            if budget == 0 || self.should_stop() {
                break;
            }
            {
                let c = &self.clauses[idx];
                if c.deleted || c.learnt || c.len() < 3 {
                    continue;
                }
            }
            let lits = self.clauses[idx].lits.clone();
            if lits.iter().any(|&l| self.lit_value(l) != LBool::Undef) {
                continue; // will be handled by the next cleanup
            }
            budget -= 1;
            self.trail_lim.push(self.trail.len());
            let mut kept: Vec<Lit> = Vec::new();
            let mut dropped = false;
            let mut decided = false;
            for &l in &lits {
                match self.lit_value(l) {
                    // l is implied by the negations assumed so far:
                    // kept ∪ {l} already covers the clause
                    LBool::True => {
                        kept.push(l);
                        decided = true;
                        break;
                    }
                    // ¬l is implied: l contributes nothing
                    LBool::False => {
                        dropped = true;
                    }
                    LBool::Undef => {
                        kept.push(l);
                        self.uncheck_enqueue(!l, INVALID_CLAUSE);
                        if self.propagate().is_some() {
                            decided = true;
                            break;
                        }
                        if self.should_stop() {
                            self.backtrack(0);
                            return true;
                        }
                    }
                }
            }
            self.backtrack(0);
            let adopt = if decided {
                kept.len() < lits.len()
            } else {
                dropped
            };
            if !adopt {
                continue;
            }
            self.stats.vivified_clauses += 1;
            self.log_learn(&kept);
            if let Some(p) = self.proof.as_deref_mut() {
                p.delete(&lits);
            }
            self.clauses[idx].deleted = true;
            if kept.len() >= 2 {
                let lbd = self.clauses[idx].lbd.min(kept.len() as u32);
                self.attach_clause(Clause::new(kept, false, lbd));
            } else {
                match self.lit_value(kept[0]) {
                    LBool::True => {}
                    LBool::False => {
                        self.log_learn(&[]);
                        self.ok = false;
                        return false;
                    }
                    LBool::Undef => self.uncheck_enqueue(kept[0], INVALID_CLAUSE),
                }
                if self.propagate().is_some() {
                    self.log_learn(&[]);
                    self.ok = false;
                    return false;
                }
            }
        }
        self.ok
    }

    /// Undoes the elimination of `v` (and, transitively, of every
    /// variable its stored clauses mention): the variable re-enters
    /// the branching heap and its original clauses are re-added, each
    /// re-recorded as a proof *input* — they were deleted from the
    /// proof stream when `v` was eliminated, and re-deriving them is
    /// not possible in general (elimination is an equisatisfiability
    /// step, not an equivalence).
    pub(super) fn restore_var(&mut self, v: Var) {
        debug_assert_eq!(self.decision_level(), 0);
        let mut work = vec![v];
        while let Some(v) = work.pop() {
            if !self.eliminated[v.index()] {
                continue;
            }
            self.eliminated[v.index()] = false;
            self.num_eliminated -= 1;
            self.heap.insert(v, &self.activity);
            let Some(clauses) = self.recon.deactivate(v) else {
                continue;
            };
            for lits in clauses {
                for &l in &lits {
                    if self.eliminated[l.var().index()] {
                        work.push(l.var());
                    }
                }
                if let Some(p) = self.proof.as_deref_mut() {
                    p.input(&lits);
                }
                self.add_normalized(&lits);
                if !self.ok {
                    return;
                }
            }
        }
        self.simplify_dirty = true;
    }

    /// Extends the model snapshot over the eliminated variables by
    /// replaying the reconstruction stack (newest elimination first),
    /// so [`Solver::value`] answers for every variable of the
    /// *original* formula.
    pub(super) fn extend_model(&mut self) {
        if self.recon.active_records() == 0 {
            return;
        }
        let mut m: Vec<Option<bool>> = self
            .model
            .iter()
            .map(|&a| match a {
                LBool::True => Some(true),
                LBool::False => Some(false),
                LBool::Undef => None,
            })
            .collect();
        self.recon.extend_model(&mut m);
        for (slot, val) in self.model.iter_mut().zip(m) {
            if let Some(b) = val {
                *slot = LBool::from_bool(b);
            }
        }
    }
}
