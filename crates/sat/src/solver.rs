//! The CDCL search engine.

mod inprocess;

use crate::clause::{Clause, ClauseRef, Watcher};
use crate::config::{PhaseInit, SimplifyConfig, SolverConfig, XorShift64};
use crate::heap::ActivityHeap;
use crate::proof::ProofLogger;
use crate::simplify::ReconStack;
use crate::types::{LBool, Lit, Var};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Outcome of a [`Solver::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with [`Solver::value`].
    Sat,
    /// The clauses (under the given assumptions) are unsatisfiable.
    Unsat,
    /// A budget (conflicts or wall clock) ran out before a verdict.
    Unknown,
}

/// Resource limits for one `solve` call.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Maximum number of conflicts, or `u64::MAX` for unlimited.
    pub max_conflicts: u64,
    /// Wall-clock deadline, or `None` for unlimited.
    pub timeout: Option<Duration>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_conflicts: u64::MAX,
            timeout: None,
        }
    }
}

impl Budget {
    /// Unlimited budget.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Wall-clock limit only.
    pub fn with_timeout(t: Duration) -> Self {
        Budget {
            max_conflicts: u64::MAX,
            timeout: Some(t),
        }
    }
}

/// Aggregate search statistics, cumulative across `solve` calls.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SolverStats {
    pub conflicts: u64,
    pub decisions: u64,
    pub propagations: u64,
    pub restarts: u64,
    pub learnt_clauses: u64,
    pub deleted_clauses: u64,
    pub solve_calls: u64,
    /// Learned clauses handed to the export hook (portfolio sharing).
    pub exported_clauses: u64,
    /// Shared clauses accepted from the import hook.
    pub imported_clauses: u64,
    /// Shared clauses rejected because they failed the RUP admission
    /// check under proof logging (see [`Solver::set_import_hook`]).
    pub rejected_clauses: u64,
    /// Variables eliminated by bounded variable elimination (cumulative;
    /// restored variables are not subtracted).
    pub eliminated_vars: u64,
    /// Clauses deleted because another live clause subsumes them.
    pub subsumed_clauses: u64,
    /// Clauses shortened by self-subsuming resolution.
    pub strengthened_clauses: u64,
    /// Failed literals found by probing (each yields a level-0 unit).
    pub failed_literals: u64,
    /// Clauses shortened by vivification.
    pub vivified_clauses: u64,
    /// Completed pre-/inprocessing passes.
    pub simplify_passes: u64,
}

// every field is a u64 counter; if this fails, a field of another
// width was added and the destructuring in `merge` needs review too
const _: () = assert!(
    std::mem::size_of::<SolverStats>() == 16 * std::mem::size_of::<u64>(),
    "SolverStats gained or lost a field: update merge() and this assertion"
);

impl SolverStats {
    /// Field-wise sum — aggregates statistics across portfolio workers.
    pub fn merge(&mut self, other: &SolverStats) {
        // exhaustive destructuring: a new field that is not merged
        // below is a compile error, not a silently-dropped statistic
        let SolverStats {
            conflicts,
            decisions,
            propagations,
            restarts,
            learnt_clauses,
            deleted_clauses,
            solve_calls,
            exported_clauses,
            imported_clauses,
            rejected_clauses,
            eliminated_vars,
            subsumed_clauses,
            strengthened_clauses,
            failed_literals,
            vivified_clauses,
            simplify_passes,
        } = *other;
        self.conflicts += conflicts;
        self.decisions += decisions;
        self.propagations += propagations;
        self.restarts += restarts;
        self.learnt_clauses += learnt_clauses;
        self.deleted_clauses += deleted_clauses;
        self.solve_calls += solve_calls;
        self.exported_clauses += exported_clauses;
        self.imported_clauses += imported_clauses;
        self.rejected_clauses += rejected_clauses;
        self.eliminated_vars += eliminated_vars;
        self.subsumed_clauses += subsumed_clauses;
        self.strengthened_clauses += strengthened_clauses;
        self.failed_literals += failed_literals;
        self.vivified_clauses += vivified_clauses;
        self.simplify_passes += simplify_passes;
    }

    /// Field-wise difference `self − baseline` — carves the effort of
    /// one query out of a cumulative counter set. A warm portfolio
    /// worker that persists across queries snapshots its stats before
    /// each solve and reports `stats().delta_since(&snapshot)`, so
    /// per-query aggregation keeps the same meaning it has with
    /// throwaway workers (e.g. `solve_calls` = queries × workers).
    ///
    /// Every counter is monotone, so the subtraction saturates only to
    /// guard against a caller mixing snapshots from different solvers.
    pub fn delta_since(&self, baseline: &SolverStats) -> SolverStats {
        // exhaustive destructuring, same discipline as `merge`: a new
        // field that is not subtracted below is a compile error
        let SolverStats {
            conflicts,
            decisions,
            propagations,
            restarts,
            learnt_clauses,
            deleted_clauses,
            solve_calls,
            exported_clauses,
            imported_clauses,
            rejected_clauses,
            eliminated_vars,
            subsumed_clauses,
            strengthened_clauses,
            failed_literals,
            vivified_clauses,
            simplify_passes,
        } = *self;
        SolverStats {
            conflicts: conflicts.saturating_sub(baseline.conflicts),
            decisions: decisions.saturating_sub(baseline.decisions),
            propagations: propagations.saturating_sub(baseline.propagations),
            restarts: restarts.saturating_sub(baseline.restarts),
            learnt_clauses: learnt_clauses.saturating_sub(baseline.learnt_clauses),
            deleted_clauses: deleted_clauses.saturating_sub(baseline.deleted_clauses),
            solve_calls: solve_calls.saturating_sub(baseline.solve_calls),
            exported_clauses: exported_clauses.saturating_sub(baseline.exported_clauses),
            imported_clauses: imported_clauses.saturating_sub(baseline.imported_clauses),
            rejected_clauses: rejected_clauses.saturating_sub(baseline.rejected_clauses),
            eliminated_vars: eliminated_vars.saturating_sub(baseline.eliminated_vars),
            subsumed_clauses: subsumed_clauses.saturating_sub(baseline.subsumed_clauses),
            strengthened_clauses: strengthened_clauses
                .saturating_sub(baseline.strengthened_clauses),
            failed_literals: failed_literals.saturating_sub(baseline.failed_literals),
            vivified_clauses: vivified_clauses.saturating_sub(baseline.vivified_clauses),
            simplify_passes: simplify_passes.saturating_sub(baseline.simplify_passes),
        }
    }
}

/// Receiver for learned clauses passing the LBD sharing filter
/// (clause literals, LBD at learning time).
pub type ExportHook = Box<dyn FnMut(&[Lit], u32) + Send>;

/// Progress callback invoked at every restart boundary with the
/// solver's cumulative statistics (see [`Solver::set_progress_hook`]).
/// Independent of the tracing collector: hosts that want live
/// conflicts/sec, propagation, restart, and simplification deltas
/// (TTY lines, `fecsynth serve` heartbeats) subscribe here without
/// installing any sink.
pub type ProgressHook = Box<dyn FnMut(&SolverStats) + Send>;

/// Supplier of shared clauses, polled at restart boundaries; returns
/// `(clause, lbd)` batches drained from peer workers.
pub type ImportHook = Box<dyn FnMut() -> Vec<(Vec<Lit>, u32)> + Send>;

const INVALID_CLAUSE: ClauseRef = ClauseRef(u32::MAX);

/// A CDCL SAT solver (see crate docs for the feature list).
pub struct Solver {
    // clause database
    clauses: Vec<Clause>,
    // watches[lit.index()] = watchers of clauses that contain ¬lit
    watches: Vec<Vec<Watcher>>,
    // assignment trail
    assigns: Vec<LBool>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    // reason[v] = clause that propagated v, INVALID for decisions
    reason: Vec<ClauseRef>,
    level: Vec<u32>,
    // branching
    activity: Vec<f64>,
    heap: ActivityHeap,
    var_inc: f64,
    saved_phase: Vec<bool>,
    // clause activity
    cla_inc: f64,
    // analyze scratch
    seen: Vec<bool>,
    // status
    ok: bool,
    stats: SolverStats,
    // learnt DB reduction schedule
    max_learnts: f64,
    // model snapshot from the last Sat answer
    model: Vec<LBool>,
    // failed assumptions from the last assumption-Unsat answer
    conflict_assumptions: Vec<Lit>,
    // DRAT proof stream receiver; None = logging off (the default)
    proof: Option<Box<dyn ProofLogger>>,
    // heuristic knobs (fixed at construction)
    config: SolverConfig,
    // the solver's only randomness source, seeded from the config
    rng: XorShift64,
    // cooperative cancellation (portfolio first-to-finish)
    stop: Option<Arc<AtomicBool>>,
    // portfolio clause sharing
    export: Option<ExportHook>,
    export_lbd_max: u32,
    import: Option<ImportHook>,
    // restart-boundary progress callback (None = off, the default)
    progress: Option<ProgressHook>,
    // LBD distribution of learned clauses (bucket 15 = "≥ 15"); only
    // maintained while tracing is enabled at Debug, so the conflict
    // path pays one predictable branch otherwise
    lbd_hist: [u64; 16],
    // portion of lbd_hist already flushed to the trace histogram
    lbd_flushed: [u64; 16],
    // (time, conflict count) at the previous snapshot, for rates/gaps
    last_snapshot: Option<(Instant, u64)>,
    // --- simplification state (see solver/inprocess.rs) ---
    // frozen[v]: never eliminate v (assumption / activation variables)
    frozen: Vec<bool>,
    // eliminated[v]: removed by BVE; no live clause mentions v and the
    // decision loop skips it until restored
    eliminated: Vec<bool>,
    // count of currently-eliminated variables (fast-path guard)
    num_eliminated: usize,
    // solution reconstruction records, replayed in reverse on each Sat
    recon: ReconStack,
    // clauses arrived since the last pass ⇒ preprocessing is due
    simplify_dirty: bool,
    // restarts since the last pass ⇒ inprocessing cadence
    restarts_since_simplify: u64,
    // completed inprocessing runs: the cadence doubles after each, so
    // total inprocessing cost is a geometric series of the search time
    inprocess_runs: u32,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// An empty solver with the default (historical) heuristics.
    pub fn new() -> Solver {
        Solver::with_config(SolverConfig::default())
    }

    /// An empty solver with explicit heuristic knobs — the entry point
    /// for portfolio diversification.
    pub fn with_config(config: SolverConfig) -> Solver {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            reason: Vec::new(),
            level: Vec::new(),
            activity: Vec::new(),
            heap: ActivityHeap::new(),
            var_inc: 1.0,
            saved_phase: Vec::new(),
            cla_inc: 1.0,
            seen: Vec::new(),
            ok: true,
            stats: SolverStats::default(),
            max_learnts: 4000.0,
            model: Vec::new(),
            conflict_assumptions: Vec::new(),
            proof: None,
            rng: XorShift64::new(config.seed),
            config,
            stop: None,
            export: None,
            export_lbd_max: 0,
            import: None,
            progress: None,
            lbd_hist: [0; 16],
            lbd_flushed: [0; 16],
            last_snapshot: None,
            frozen: Vec::new(),
            eliminated: Vec::new(),
            num_eliminated: 0,
            recon: ReconStack::new(),
            simplify_dirty: false,
            restarts_since_simplify: 0,
            inprocess_runs: 0,
        }
    }

    /// The heuristic configuration this solver was built with.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Installs a cancellation flag. When another thread sets it, the
    /// solver aborts at the next check point — inside the propagation
    /// loop (every 1024 propagations), after each conflict, and before
    /// each restart — and the pending `solve` returns
    /// [`SolveResult::Unknown`]. The solver remains usable.
    pub fn set_stop_flag(&mut self, flag: Arc<AtomicBool>) {
        self.stop = Some(flag);
    }

    /// Installs the learned-clause export hook: every clause learned by
    /// conflict analysis with LBD ≤ `lbd_max` (after minimization) is
    /// handed to `hook` before it is attached.
    pub fn set_export_hook(&mut self, hook: ExportHook, lbd_max: u32) {
        self.export = Some(hook);
        self.export_lbd_max = lbd_max;
    }

    /// Installs the shared-clause import hook, polled once per restart
    /// boundary (at decision level 0). When a proof logger is
    /// installed, each imported clause is admitted only if it is RUP
    /// with respect to this solver's current clause database — the
    /// accepted clause is then logged as a regular `Learn` step, so the
    /// proof stream stays self-contained. Without a proof logger,
    /// imports are trusted (peers solve the same formula, so shared
    /// clauses are logical consequences of it).
    pub fn set_import_hook(&mut self, hook: ImportHook) {
        self.import = Some(hook);
    }

    /// Installs a progress callback fired at every restart boundary —
    /// the natural sampling point: never inside the propagation loop,
    /// frequent enough (Luby schedule) for live rate displays. The
    /// hook sees cumulative [`SolverStats`]; callers diff successive
    /// snapshots for per-interval rates.
    pub fn set_progress_hook(&mut self, hook: ProgressHook) {
        self.progress = Some(hook);
    }

    #[inline]
    fn should_stop(&self) -> bool {
        self.stop
            .as_ref()
            .is_some_and(|s| s.load(Ordering::Relaxed))
    }

    /// Installs a proof logger receiving the DRAT stream of this solver.
    ///
    /// Must be installed on a *fresh* solver (before any `add_clause`):
    /// clauses added earlier would be missing from the input record and
    /// an independent checker would reject lemmas derived from them.
    pub fn set_proof_logger(&mut self, logger: Box<dyn ProofLogger>) {
        assert!(
            self.clauses.is_empty() && self.trail.is_empty() && self.ok,
            "proof logger must be installed before any clause is added"
        );
        self.proof = Some(logger);
    }

    /// Removes and returns the installed proof logger, if any.
    pub fn take_proof_logger(&mut self) -> Option<Box<dyn ProofLogger>> {
        self.proof.take()
    }

    /// `true` when a proof logger is installed.
    pub fn has_proof_logger(&self) -> bool {
        self.proof.is_some()
    }

    #[inline]
    fn log_learn(&mut self, lits: &[Lit]) {
        if let Some(p) = self.proof.as_deref_mut() {
            p.learn(lits);
        }
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.assigns.len());
        self.assigns.push(LBool::Undef);
        self.reason.push(INVALID_CLAUSE);
        self.level.push(0);
        // tiny seeded activities break the index-order tie among
        // untouched variables without outliving the first real bumps
        let act = if self.config.randomize_order {
            self.rng.next_f64() * 1e-9
        } else {
            0.0
        };
        self.activity.push(act);
        let phase = match self.config.phase_init {
            PhaseInit::AllFalse => false,
            PhaseInit::AllTrue => true,
            PhaseInit::Random => self.rng.next_bool(),
        };
        self.saved_phase.push(phase);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.frozen.push(false);
        self.eliminated.push(false);
        self.heap.push_new_var(v, &self.activity);
        v
    }

    /// Number of variables created.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of live problem + learnt clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.iter().filter(|c| !c.deleted).count()
    }

    /// Number of variables currently eliminated by the simplifier.
    pub fn num_eliminated(&self) -> usize {
        self.num_eliminated
    }

    /// Number of variables still in play: neither eliminated nor fixed
    /// by a level-0 assignment (size metric for preprocessing claims).
    pub fn num_active_vars(&self) -> usize {
        self.assigns.iter().filter(|&&a| a == LBool::Undef).count() - self.num_eliminated
    }

    /// Marks `v` as frozen: the simplifier will never eliminate it.
    /// Required for variables used as assumptions or activation
    /// literals *outside* `solve` calls (assumption variables of the
    /// current call are frozen automatically).
    pub fn freeze_var(&mut self, v: Var) {
        if self.eliminated[v.index()] {
            self.restore_var(v);
        }
        self.frozen[v.index()] = true;
    }

    /// Releases a [`Solver::freeze_var`] mark.
    pub fn unfreeze_var(&mut self, v: Var) {
        self.frozen[v.index()] = false;
    }

    /// `true` when `v` is frozen against elimination.
    pub fn is_frozen(&self, v: Var) -> bool {
        self.frozen[v.index()]
    }

    /// `true` while `v` is eliminated (restored automatically when a
    /// new clause or assumption mentions it).
    pub fn is_eliminated(&self, v: Var) -> bool {
        self.eliminated[v.index()]
    }

    /// Replaces the simplification configuration (effective at the
    /// next `solve` / [`Solver::preprocess`] call).
    pub fn set_simplify(&mut self, cfg: SimplifyConfig) {
        self.config.simplify = cfg;
        if cfg.enabled() {
            // clauses may have been added before the switch
            self.simplify_dirty = true;
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// LBD distribution of learned clauses (bucket 15 counts LBD ≥ 15).
    /// Populated only while tracing is enabled at `Debug` level, so it
    /// reads all-zero in untraced runs.
    pub fn lbd_histogram(&self) -> &[u64; 16] {
        &self.lbd_hist
    }

    #[inline]
    fn record_lbd(&mut self, lbd: u32) {
        // guarded by the same single relaxed load as every other site;
        // the histogram write happens only when someone is listening
        if fec_trace::enabled(fec_trace::Level::Debug) {
            self.lbd_hist[(lbd as usize).min(15)] += 1;
        }
    }

    /// Sampled hot-loop observability: one `sat.snapshot` event per
    /// restart boundary (never inside the propagation loop), carrying
    /// cumulative totals, the conflict rate, and the LBD histogram —
    /// plus gauge/histogram instrument flushes: learned-DB size and
    /// trail depth gauges, per-restart conflict-gap samples, and the
    /// LBD counts accumulated since the previous snapshot.
    fn emit_snapshot(&mut self, start: Instant) {
        let now = Instant::now();
        let secs = (now - start).as_secs_f64();
        let rate = if secs > 0.0 {
            self.stats.conflicts as f64 / secs
        } else {
            0.0
        };
        let hist = self
            .lbd_hist
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(",");
        fec_trace::event!(
            fec_trace::Level::Debug,
            "sat.snapshot",
            "conflicts" => self.stats.conflicts,
            "propagations" => self.stats.propagations,
            "decisions" => self.stats.decisions,
            "restarts" => self.stats.restarts,
            "learnt" => self.stats.learnt_clauses,
            "conflicts_per_s" => rate,
            "lbd_hist" => hist,
            "eliminated_vars" => self.stats.eliminated_vars,
            "subsumed" => self.stats.subsumed_clauses,
            "simplify_passes" => self.stats.simplify_passes,
        );
        use fec_trace::Level::Debug;
        // gauges: the learnt-DB level and the trail depth at this
        // boundary (before the restart's backtrack to level 0)
        let live_learnt = self
            .stats
            .learnt_clauses
            .saturating_sub(self.stats.deleted_clauses);
        fec_trace::gauge!(Debug, "sat.learnt_db", live_learnt);
        fec_trace::gauge!(Debug, "sat.trail_depth", self.trail.len());
        // deltas since the previous snapshot: the conflict counter (for
        // watchdog/TTY rate displays), the mean conflict-to-conflict
        // gap over the interval (one batched histogram record — the
        // conflict loop itself never reads the clock), and the fresh
        // portion of the LBD distribution
        let (since, base) = self
            .last_snapshot
            .map_or((now - start, 0), |(at, c)| (now - at, c));
        let new_conflicts = self.stats.conflicts - base;
        if new_conflicts > 0 {
            fec_trace::counter!(Debug, "sat.conflicts", new_conflicts);
            let gap_us = since.as_micros() as u64 / new_conflicts;
            fec_trace::hist!(Debug, "sat.conflict_gap_us", gap_us, new_conflicts);
        }
        for (lbd, (&total, flushed)) in self
            .lbd_hist
            .iter()
            .zip(self.lbd_flushed.iter_mut())
            .enumerate()
        {
            fec_trace::hist!(Debug, "sat.lbd", lbd as u64, total - *flushed);
            *flushed = total;
        }
        self.last_snapshot = Some((now, self.stats.conflicts));
    }

    /// `false` once the clause set is known unsatisfiable outright
    /// (independent of assumptions).
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Adds a clause (a disjunction of `lits`). Returns `false` if the
    /// solver is already in an unsatisfiable state afterwards.
    ///
    /// An empty clause (after simplification) makes the instance
    /// trivially unsatisfiable.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0, "clauses are added at level 0");
        if !self.ok {
            return false;
        }
        // a clause over an eliminated variable re-introduces it: undo
        // the elimination (and, transitively, any elimination its
        // stored clauses depend on) before the clause is recorded
        if self.num_eliminated > 0 {
            for &l in lits {
                if l.var().index() < self.num_vars() && self.eliminated[l.var().index()] {
                    self.restore_var(l.var());
                }
            }
            if !self.ok {
                return false;
            }
        }
        // record the clause as given, before any simplification: the
        // proof stream doubles as the checker's input formula
        if let Some(p) = self.proof.as_deref_mut() {
            p.input(lits);
        }
        self.simplify_dirty = true;
        self.add_normalized(lits)
    }

    /// Normalizes and attaches one clause already recorded in the proof
    /// stream (shared by [`Solver::add_clause`] and variable
    /// restoration): sort, dedup, drop tautologies, satisfied clauses,
    /// and false-at-level-0 literals.
    fn add_normalized(&mut self, lits: &[Lit]) -> bool {
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort_unstable();
        ls.dedup();
        let mut out: Vec<Lit> = Vec::with_capacity(ls.len());
        let mut dropped_false = false;
        for (i, &l) in ls.iter().enumerate() {
            if i + 1 < ls.len() && ls[i + 1] == !l {
                return true; // tautology: contains both l and ¬l
            }
            match self.lit_value(l) {
                LBool::True => return true,           // already satisfied at level 0
                LBool::False => dropped_false = true, // drop falsified literal
                LBool::Undef => out.push(l),
            }
        }
        if dropped_false && !out.is_empty() {
            // the attached clause differs from the recorded input, so a
            // later deletion of it would not match any checker clause;
            // log the shortened form as a lemma (RUP: its negation
            // plus the level-0 units falsify the input clause)
            self.log_learn(&out);
        }
        match out.len() {
            0 => {
                // the clause was falsified outright by level-0 units:
                // the empty clause has reverse unit propagation
                self.log_learn(&[]);
                self.ok = false;
                false
            }
            1 => {
                self.uncheck_enqueue(out[0], INVALID_CLAUSE);
                if self.propagate().is_some() {
                    self.log_learn(&[]);
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(Clause::new(out, false, 0));
                true
            }
        }
    }

    fn attach_clause(&mut self, clause: Clause) -> ClauseRef {
        debug_assert!(clause.len() >= 2);
        let cref = ClauseRef(u32::try_from(self.clauses.len()).expect("clause count overflow"));
        let (w0, w1) = (clause.lits[0], clause.lits[1]);
        // a watcher fires when its literal's negation becomes true,
        // so the entry for watching w lives in watches[(!w).index()]
        self.watches[(!w0).index()].push(Watcher { cref, blocker: w1 });
        self.watches[(!w1).index()].push(Watcher { cref, blocker: w0 });
        self.clauses.push(clause);
        cref
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> LBool {
        match self.assigns[l.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => LBool::from_bool(l.is_pos()),
            LBool::False => LBool::from_bool(!l.is_pos()),
        }
    }

    /// The value of `v` in the most recent satisfying model.
    /// `None` before any `Sat` answer, or if `v` did not exist then.
    pub fn value(&self, v: Var) -> Option<bool> {
        match self.model.get(v.index())? {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }

    /// After an `Unsat` answer under assumptions: the subset of
    /// assumption literals used to derive the contradiction.
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.conflict_assumptions
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn uncheck_enqueue(&mut self, l: Lit, from: ClauseRef) {
        debug_assert_eq!(self.lit_value(l), LBool::Undef);
        let v = l.var().index();
        self.assigns[v] = LBool::from_bool(l.is_pos());
        self.reason[v] = from;
        self.level[v] = self.decision_level();
        self.trail.push(l);
    }

    /// Boolean constraint propagation from the current queue head.
    /// Returns a conflicting clause, if any.
    ///
    /// The cancellation flag is polled here every 1024 propagations;
    /// on cancellation the loop exits early (leaving the queue
    /// partially propagated) and the caller must check
    /// [`Solver::should_stop`] before relying on the state.
    fn propagate(&mut self) -> Option<ClauseRef> {
        let mut conflict = None;
        while conflict.is_none() && self.qhead < self.trail.len() {
            if self.stats.propagations & 0x3FF == 0 && self.should_stop() {
                return None;
            }
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut i = 0;
            let mut j = 0;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                // fast path: blocker already true means clause satisfied
                if self.lit_value(w.blocker) == LBool::True {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let cref = w.cref;
                if self.clauses[cref.0 as usize].deleted {
                    continue; // lazily drop watcher of a tombstoned clause
                }
                // ensure the falsified literal sits at lits[1]
                let false_lit = !p;
                {
                    let clause = &mut self.clauses[cref.0 as usize];
                    if clause.lits[0] == false_lit {
                        clause.lits.swap(0, 1);
                    }
                    debug_assert_eq!(clause.lits[1], false_lit);
                }
                let first = self.clauses[cref.0 as usize].lits[0];
                let new_watcher = Watcher {
                    cref,
                    blocker: first,
                };
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    ws[j] = new_watcher;
                    j += 1;
                    continue;
                }
                // search for an unfalsified replacement watch
                let len = self.clauses[cref.0 as usize].len();
                for k in 2..len {
                    let lk = self.clauses[cref.0 as usize].lits[k];
                    if self.lit_value(lk) != LBool::False {
                        self.clauses[cref.0 as usize].lits.swap(1, k);
                        self.watches[(!lk).index()].push(new_watcher);
                        continue 'watchers;
                    }
                }
                // clause is unit or conflicting
                ws[j] = new_watcher;
                j += 1;
                if self.lit_value(first) == LBool::False {
                    conflict = Some(cref);
                    // copy back the rest of the watcher list untouched
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                } else {
                    self.uncheck_enqueue(first, cref);
                }
            }
            ws.truncate(j);
            self.watches[p.index()] = ws;
        }
        if conflict.is_some() {
            // unpropagated tail entries are above the conflict's decision
            // level and will be truncated by the imminent backtrack
            self.qhead = self.trail.len();
        }
        conflict
    }

    /// First-UIP conflict analysis. Returns the learnt clause with the
    /// asserting literal in slot 0 (and the watch partner, the highest-
    /// level remaining literal, in slot 1) plus the backjump level.
    fn analyze(&mut self, mut conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot 0 = asserting literal
        let mut counter = 0usize;
        let mut resolving_on: Option<Lit> = None;
        let mut index = self.trail.len();

        loop {
            if self.clauses[conflict.0 as usize].learnt {
                self.bump_clause(conflict);
            }
            // skip lits[0] of a reason clause: it is the propagated literal
            let start = usize::from(resolving_on.is_some());
            let clause_lits: Vec<Lit> = self.clauses[conflict.0 as usize].lits[start..].to_vec();
            for q in clause_lits {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // next current-level literal on the trail to resolve on
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !pl;
                break;
            }
            resolving_on = Some(pl);
            conflict = self.reason[pl.var().index()];
            debug_assert_ne!(conflict, INVALID_CLAUSE, "resolving on a decision");
        }

        // clause minimization: drop literals whose reason is subsumed
        let mut minimized = vec![learnt[0]];
        minimized.extend(
            learnt[1..]
                .iter()
                .copied()
                .filter(|&l| !self.literal_redundant(l, &learnt)),
        );

        for l in &learnt {
            self.seen[l.var().index()] = false;
        }

        let bt = if minimized.len() == 1 {
            0
        } else {
            // put the highest-level non-asserting literal in slot 1 so the
            // watch pair is (asserting, backjump-level) as CDCL requires
            let mut max_i = 1;
            for i in 2..minimized.len() {
                if self.level[minimized[i].var().index()]
                    > self.level[minimized[max_i].var().index()]
                {
                    max_i = i;
                }
            }
            minimized.swap(1, max_i);
            self.level[minimized[1].var().index()]
        };
        (minimized, bt)
    }

    /// Local redundancy test (MiniSat's basic minimization): `l` can be
    /// dropped when every other literal of its reason clause is either
    /// already in the learnt clause or fixed at level 0.
    fn literal_redundant(&self, l: Lit, learnt: &[Lit]) -> bool {
        let r = self.reason[l.var().index()];
        if r == INVALID_CLAUSE {
            return false;
        }
        self.clauses[r.0 as usize]
            .lits
            .iter()
            .all(|&q| q == !l || self.level[q.var().index()] == 0 || learnt.contains(&q))
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.update(v, &self.activity);
    }

    fn bump_clause(&mut self, c: ClauseRef) {
        let cl = &mut self.clauses[c.0 as usize];
        cl.activity += self.cla_inc;
        if cl.activity > 1e20 {
            for cl in self.clauses.iter_mut().filter(|c| c.learnt) {
                cl.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// Undoes all assignments above `level`.
    fn backtrack(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let keep = self.trail_lim[level as usize];
        for i in (keep..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            self.saved_phase[v.index()] = l.is_pos();
            self.assigns[v.index()] = LBool::Undef;
            self.reason[v.index()] = INVALID_CLAUSE;
            self.heap.insert(v, &self.activity);
        }
        self.trail.truncate(keep);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    /// Literal-block distance: number of distinct decision levels.
    fn compute_lbd(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits.iter().map(|l| self.level[l.var().index()]).collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    /// Tombstones the worst half of the removable learnt clauses.
    fn reduce_db(&mut self) {
        let mut learnts: Vec<usize> = (0..self.clauses.len())
            .filter(|&i| {
                let c = &self.clauses[i];
                c.learnt && !c.deleted && c.len() > 2 && c.lbd > 2 && !self.is_reason(i)
            })
            .collect();
        // worst first: high LBD, then low activity
        learnts.sort_by(|&a, &b| {
            let (ca, cb) = (&self.clauses[a], &self.clauses[b]);
            cb.lbd
                .cmp(&ca.lbd)
                .then(ca.activity.total_cmp(&cb.activity))
        });
        let n = learnts.len() / 2;
        for &i in learnts.iter().take(n) {
            self.clauses[i].deleted = true;
            self.stats.deleted_clauses += 1;
            if let Some(p) = self.proof.as_deref_mut() {
                p.delete(&self.clauses[i].lits);
            }
        }
    }

    fn is_reason(&self, clause_idx: usize) -> bool {
        let c = &self.clauses[clause_idx];
        let l = c.lits[0];
        self.lit_value(l) == LBool::True
            && self.reason[l.var().index()] == ClauseRef(clause_idx as u32)
    }

    /// Hands a freshly learned clause to the export hook when its LBD
    /// passes the sharing filter.
    fn export_learnt(&mut self, lits: &[Lit], lbd: u32) {
        if let Some(hook) = self.export.as_mut() {
            if lbd <= self.export_lbd_max {
                hook(lits, lbd);
                self.stats.exported_clauses += 1;
            }
        }
    }

    /// Drains the import hook at a restart boundary (decision level 0)
    /// and integrates each shared clause. May discover unsatisfiability
    /// (`self.ok` becomes false).
    fn import_shared(&mut self) {
        if self.import.is_none() {
            return;
        }
        debug_assert_eq!(self.decision_level(), 0);
        let batch = self.import.as_mut().map(|h| h()).unwrap_or_default();
        for (lits, lbd) in batch {
            if !self.ok {
                return;
            }
            self.integrate_import(&lits, lbd);
        }
    }

    /// Integrates one clause shared by a peer worker.
    ///
    /// The clause is simplified against the level-0 assignment first.
    /// With a proof logger installed, it is admitted only if RUP over
    /// this solver's live clause database (and then logged as a `Learn`
    /// step, keeping the proof self-contained); otherwise it is trusted
    /// — peers solve the same formula, so their learned clauses are
    /// logical consequences of it.
    fn integrate_import(&mut self, lits: &[Lit], lbd: u32) {
        debug_assert_eq!(self.decision_level(), 0);
        let mut out: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            // defensive: peers share the identical CNF, so unknown
            // variables should not occur
            if l.var().index() >= self.num_vars() {
                return;
            }
            // a peer's clause may mention a variable this worker has
            // eliminated; attaching it would break the elimination
            // invariant, so drop the import instead
            if self.eliminated[l.var().index()] {
                return;
            }
            match self.lit_value(l) {
                LBool::True => return, // satisfied at level 0
                LBool::False => {}     // drop falsified literal
                LBool::Undef => out.push(l),
            }
        }
        out.sort_unstable();
        out.dedup();
        // adjacent sorted literals of one variable ⇒ tautology
        if out.windows(2).any(|w| w[1] == !w[0]) {
            return;
        }
        if self.proof.is_some() && !self.import_is_rup(&out) {
            // not locally derivable: reject to keep the proof sound
            self.stats.rejected_clauses += 1;
            return;
        }
        self.log_learn(&out);
        self.stats.imported_clauses += 1;
        match out.len() {
            0 => {
                // falsified at level 0: the (trusted) consequence
                // refutes the formula (already logged above)
                self.ok = false;
            }
            1 => {
                self.uncheck_enqueue(out[0], INVALID_CLAUSE);
                if self.propagate().is_some() {
                    self.log_learn(&[]);
                    self.ok = false;
                }
            }
            _ => {
                let lbd = lbd.clamp(1, out.len() as u32);
                self.attach_clause(Clause::new(out, true, lbd));
            }
        }
    }

    /// Reverse-unit-propagation test used to filter imports under proof
    /// logging: assume the negation of every literal of `lits` on a
    /// scratch decision level and propagate; RUP holds iff that
    /// conflicts. Leaves the solver back at level 0.
    fn import_is_rup(&mut self, lits: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        self.trail_lim.push(self.trail.len());
        for &l in lits {
            debug_assert_eq!(self.lit_value(l), LBool::Undef);
            self.uncheck_enqueue(!l, INVALID_CLAUSE);
        }
        let conflicting = self.propagate().is_some();
        self.backtrack(0);
        conflicting
    }

    /// Solves under `assumptions` with an unlimited budget.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_with_budget(assumptions, Budget::unlimited())
    }

    /// Solves the clause set under the given assumption literals and
    /// resource budget. The solver remains usable afterwards regardless
    /// of the outcome (state is backtracked to level 0).
    pub fn solve_with_budget(&mut self, assumptions: &[Lit], budget: Budget) -> SolveResult {
        self.stats.solve_calls += 1;
        self.conflict_assumptions.clear();
        if !self.ok {
            return SolveResult::Unsat;
        }
        // an assumption over an eliminated variable re-introduces it
        if self.num_eliminated > 0 {
            for &a in assumptions {
                if a.var().index() < self.num_vars() && self.eliminated[a.var().index()] {
                    self.restore_var(a.var());
                }
            }
            if !self.ok {
                return SolveResult::Unsat;
            }
        }
        // preprocessing: simplify once per batch of new clauses
        if self.config.simplify.preprocess && self.simplify_dirty {
            self.simplify_dirty = false;
            if !self.simplify_run(assumptions) {
                return SolveResult::Unsat;
            }
            if self.should_stop() {
                return SolveResult::Unknown;
            }
        }
        let start = Instant::now();
        let conflict_budget = self.stats.conflicts.saturating_add(budget.max_conflicts);
        let mut restart_idx = 0u64;
        let result = loop {
            if self.should_stop() {
                break SolveResult::Unknown;
            }
            let limit = self.config.restart.limit(restart_idx);
            restart_idx += 1;
            match self.search(assumptions, limit, conflict_budget, start, budget.timeout) {
                SearchOutcome::Sat => {
                    self.model = self.assigns.clone();
                    self.extend_model();
                    break SolveResult::Sat;
                }
                SearchOutcome::Unsat => break SolveResult::Unsat,
                SearchOutcome::Restart => {
                    self.stats.restarts += 1;
                    self.restarts_since_simplify += 1;
                    // every restart is forward progress for the watchdog
                    fec_trace::advance();
                    if fec_trace::enabled(fec_trace::Level::Debug) {
                        self.emit_snapshot(start);
                    }
                    if self.progress.is_some() {
                        let stats = self.stats;
                        if let Some(hook) = self.progress.as_mut() {
                            hook(&stats);
                        }
                    }
                    continue;
                }
                SearchOutcome::BudgetExhausted => break SolveResult::Unknown,
            }
        };
        self.backtrack(0);
        result
    }

    fn search(
        &mut self,
        assumptions: &[Lit],
        restart_limit: u64,
        conflict_budget: u64,
        start: Instant,
        timeout: Option<Duration>,
    ) -> SearchOutcome {
        self.backtrack(0);
        // restart boundary: pull clauses shared by peer workers
        self.import_shared();
        if !self.ok {
            return SearchOutcome::Unsat;
        }
        // inprocessing: run the simplifier after `inprocess_interval`
        // restarts, then double the spacing after each run — easy
        // instances pay for at most one pass, long searches still get
        // periodic cleaning at geometrically bounded total cost
        let interval = self.config.simplify.inprocess_interval;
        if interval > 0 {
            let due = interval.saturating_mul(1u64 << self.inprocess_runs.min(20));
            if self.restarts_since_simplify >= due {
                self.restarts_since_simplify = 0;
                self.inprocess_runs += 1;
                if !self.simplify_run(assumptions) {
                    return SearchOutcome::Unsat;
                }
                if self.should_stop() {
                    return SearchOutcome::BudgetExhausted;
                }
            }
        }
        let mut conflicts_this_restart = 0u64;
        loop {
            let conflict = self.propagate();
            if self.should_stop() {
                return SearchOutcome::BudgetExhausted;
            }
            if let Some(conf) = conflict {
                self.stats.conflicts += 1;
                conflicts_this_restart += 1;
                if self.decision_level() == 0 {
                    // conflict by unit propagation alone: refutation
                    self.log_learn(&[]);
                    self.ok = false;
                    return SearchOutcome::Unsat;
                }
                if self.decision_level() <= assumptions.len() as u32 {
                    // contradiction within the assumption prefix
                    self.analyze_final_clause(conf, assumptions);
                    return SearchOutcome::Unsat;
                }
                let (learnt, bt_level) = self.analyze(conf);
                self.log_learn(&learnt);
                #[cfg(debug_assertions)]
                self.debug_check_after_conflict(&learnt);
                self.backtrack(bt_level);
                let asserting = learnt[0];
                if learnt.len() == 1 {
                    self.record_lbd(1);
                    self.export_learnt(&learnt, 1);
                    self.backtrack(0);
                    match self.lit_value(asserting) {
                        LBool::Undef => self.uncheck_enqueue(asserting, INVALID_CLAUSE),
                        LBool::False => {
                            self.log_learn(&[]);
                            self.ok = false;
                            return SearchOutcome::Unsat;
                        }
                        LBool::True => {}
                    }
                } else {
                    let lbd = self.compute_lbd(&learnt);
                    self.record_lbd(lbd);
                    self.export_learnt(&learnt, lbd);
                    let cref = self.attach_clause(Clause::new(learnt, true, lbd));
                    self.stats.learnt_clauses += 1;
                    self.uncheck_enqueue(asserting, cref);
                }
                self.var_inc /= self.config.var_decay;
                self.cla_inc /= self.config.clause_decay;
                if self
                    .stats
                    .learnt_clauses
                    .saturating_sub(self.stats.deleted_clauses) as f64
                    > self.max_learnts
                {
                    self.reduce_db();
                    self.max_learnts *= 1.3;
                }
                if self.stats.conflicts >= conflict_budget {
                    return SearchOutcome::BudgetExhausted;
                }
                if conflicts_this_restart >= restart_limit {
                    return SearchOutcome::Restart;
                }
                if self.stats.conflicts.is_multiple_of(64) {
                    if let Some(t) = timeout {
                        if start.elapsed() >= t {
                            return SearchOutcome::BudgetExhausted;
                        }
                    }
                }
            } else {
                // no conflict: establish assumptions first, then decide
                if (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.lit_value(a) {
                        LBool::True => {
                            // already implied: open an empty decision level
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            self.analyze_final_lit(a, assumptions);
                            return SearchOutcome::Unsat;
                        }
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.uncheck_enqueue(a, INVALID_CLAUSE);
                        }
                    }
                    continue;
                }
                let next = loop {
                    match self.heap.pop_max(&self.activity) {
                        None => return SearchOutcome::Sat, // everything assigned
                        Some(v)
                            if self.assigns[v.index()] == LBool::Undef
                                && !self.eliminated[v.index()] =>
                        {
                            break v
                        }
                        Some(_) => continue,
                    }
                };
                self.stats.decisions += 1;
                if self.stats.decisions.is_multiple_of(1024) {
                    if let Some(t) = timeout {
                        if start.elapsed() >= t {
                            return SearchOutcome::BudgetExhausted;
                        }
                    }
                }
                self.trail_lim.push(self.trail.len());
                let phase = self.saved_phase[next.index()];
                self.uncheck_enqueue(Lit::with_sign(next, phase), INVALID_CLAUSE);
            }
        }
    }

    /// Traces a conflict clause back to the assumptions that caused it.
    fn analyze_final_clause(&mut self, conf: ClauseRef, assumptions: &[Lit]) {
        let seed: Vec<Lit> = self.clauses[conf.0 as usize].lits.clone();
        self.trace_to_assumptions(seed, assumptions, Vec::new());
    }

    /// Handles the case where assumption `failed` is already falsified.
    fn analyze_final_lit(&mut self, failed: Lit, assumptions: &[Lit]) {
        let v = failed.var().index();
        let mut preset = vec![failed];
        let seed = if self.level[v] == 0 {
            // contradicted by level-0 facts alone: {failed} suffices
            Vec::new()
        } else if self.reason[v] != INVALID_CLAUSE {
            // ¬failed was propagated: trace the falsified literals of
            // its reason clause back to the assumptions that set them
            let r = self.reason[v];
            self.clauses[r.0 as usize].lits[1..].to_vec()
        } else {
            // ¬failed is itself an earlier assumption (directly
            // contradictory assumption set)
            preset.push(!failed);
            Vec::new()
        };
        self.trace_to_assumptions(seed, assumptions, preset);
    }

    fn trace_to_assumptions(&mut self, seed: Vec<Lit>, assumptions: &[Lit], preset: Vec<Lit>) {
        let set: std::collections::HashSet<Lit> = assumptions.iter().copied().collect();
        let mut out: Vec<Lit> = preset;
        let mut seen = vec![false; self.num_vars()];
        let mut stack = seed;
        while let Some(l) = stack.pop() {
            let v = l.var();
            if seen[v.index()] || self.level[v.index()] == 0 {
                continue;
            }
            seen[v.index()] = true;
            if set.contains(&!l) {
                if !out.contains(&!l) {
                    out.push(!l);
                }
            } else if self.reason[v.index()] != INVALID_CLAUSE {
                let r = self.reason[v.index()];
                stack.extend(self.clauses[r.0 as usize].lits.iter().copied());
            }
        }
        self.conflict_assumptions = out;
    }

    /// Exhaustive internal consistency check; panics on the first
    /// violation. Verifies:
    ///
    /// - trail/assignment agreement: exactly the trail literals are
    ///   assigned, all true, at plausible levels, with well-formed
    ///   reasons (a reason clause's slot 0 is the literal it implied);
    /// - watched-literal integrity: every live clause has length ≥ 2,
    ///   is watched on exactly its first two literals — once *each*,
    ///   so a strengthening that re-attaches a clause cannot leave two
    ///   watchers on one literal and none on the other — each
    ///   watcher's blocker is a literal of its clause, and no live
    ///   clause has stray watcher entries;
    /// - elimination integrity: no live clause mentions an eliminated
    ///   variable, and eliminated variables are unassigned, unfrozen,
    ///   and covered by an active reconstruction record count;
    /// - at a level-0 propagation fixpoint additionally: a live clause
    ///   with a falsified watched literal must be satisfied (otherwise
    ///   propagation missed a unit or conflict after the simplifier
    ///   rebuilt part of the database).
    ///
    /// Runs in O(clauses + watchers); debug builds invoke it on a
    /// sample of conflicts (see `debug_check_after_conflict`) and after
    /// every simplification pass, tests and external tools may call it
    /// at any point outside `propagate`.
    pub fn check_invariants(&self) {
        // --- trail / assignment agreement ---
        let assigned = self.assigns.iter().filter(|&&a| a != LBool::Undef).count();
        assert_eq!(
            assigned,
            self.trail.len(),
            "assigned variable count disagrees with trail length"
        );
        assert!(self.qhead <= self.trail.len(), "qhead beyond trail end");
        for (i, &l) in self.trail.iter().enumerate() {
            assert_eq!(
                self.lit_value(l),
                LBool::True,
                "trail[{i}] = {l:?} is not assigned true"
            );
            let v = l.var().index();
            assert!(
                self.level[v] <= self.decision_level(),
                "trail[{i}] = {l:?} has level {} above decision level {}",
                self.level[v],
                self.decision_level()
            );
            let r = self.reason[v];
            if r != INVALID_CLAUSE {
                let c = &self.clauses[r.0 as usize];
                assert!(!c.deleted, "reason clause of {l:?} is deleted");
                assert_eq!(
                    c.lits[0], l,
                    "reason clause of {l:?} does not have it in slot 0"
                );
            }
        }
        for (i, &lim) in self.trail_lim.iter().enumerate() {
            assert!(lim <= self.trail.len(), "trail_lim[{i}] beyond trail");
            if i > 0 {
                assert!(
                    self.trail_lim[i - 1] <= lim,
                    "trail_lim not monotonically non-decreasing at {i}"
                );
            }
        }
        // --- watched-literal integrity ---
        // tracked per watch slot, not just per clause: two watchers on
        // lits[0] and none on lits[1] also totals 2, and that is
        // exactly the corruption a buggy strengthening re-attach
        // would produce
        let mut watch_seen = vec![[false; 2]; self.clauses.len()];
        for (wi, ws) in self.watches.iter().enumerate() {
            // watches[l.index()] fires when l becomes true, i.e. holds
            // the clauses currently watching ¬l
            let watched = !Lit(wi as u32);
            for w in ws {
                assert!(
                    (w.cref.0 as usize) < self.clauses.len(),
                    "watcher references clause {} beyond the database",
                    w.cref.0
                );
                let c = &self.clauses[w.cref.0 as usize];
                if c.deleted {
                    continue; // stale entries of tombstones are dropped lazily
                }
                assert!(
                    c.lits[0] == watched || c.lits[1] == watched,
                    "clause {:?} watched on {watched:?}, not one of its first two literals",
                    c.lits
                );
                let slot = usize::from(c.lits[1] == watched);
                assert!(
                    !watch_seen[w.cref.0 as usize][slot],
                    "clause {:?} watched twice on {watched:?}",
                    c.lits
                );
                watch_seen[w.cref.0 as usize][slot] = true;
                assert!(
                    c.lits.contains(&w.blocker),
                    "watcher blocker {:?} not in clause {:?}",
                    w.blocker,
                    c.lits
                );
            }
        }
        let at_fixpoint = self.decision_level() == 0 && self.qhead == self.trail.len() && self.ok;
        for (i, c) in self.clauses.iter().enumerate() {
            if c.deleted {
                continue;
            }
            assert!(
                c.len() >= 2,
                "live clause {:?} shorter than 2 literals",
                c.lits
            );
            assert!(
                watch_seen[i][0] && watch_seen[i][1],
                "clause {:?} watched on {:?} of its first two literals",
                c.lits,
                watch_seen[i]
            );
            for &l in &c.lits {
                assert!(
                    !self.eliminated[l.var().index()],
                    "live clause {:?} mentions eliminated {:?}",
                    c.lits,
                    l.var()
                );
            }
            if at_fixpoint
                && (self.lit_value(c.lits[0]) == LBool::False
                    || self.lit_value(c.lits[1]) == LBool::False)
            {
                assert!(
                    c.lits.iter().any(|&l| self.lit_value(l) == LBool::True),
                    "clause {:?} has a falsified watch at a level-0 fixpoint \
                     but is not satisfied",
                    c.lits
                );
            }
        }
        // --- elimination bookkeeping ---
        let eliminated = self.eliminated.iter().filter(|&&e| e).count();
        assert_eq!(
            eliminated, self.num_eliminated,
            "eliminated-variable count out of sync"
        );
        assert!(
            self.recon.active_records() >= eliminated,
            "fewer reconstruction records than eliminated variables"
        );
        for v in 0..self.num_vars() {
            if self.eliminated[v] {
                assert_eq!(
                    self.assigns[v],
                    LBool::Undef,
                    "eliminated variable {v} is assigned"
                );
                assert!(!self.frozen[v], "frozen variable {v} was eliminated");
            }
        }
    }

    /// Debug-build hook run after every conflict analysis: the learnt
    /// clause must not repeat a variable, and on a sample of conflicts
    /// the full invariant sweep runs (every conflict would make debug
    /// runs quadratic in the clause database).
    #[cfg(debug_assertions)]
    fn debug_check_after_conflict(&self, learnt: &[Lit]) {
        let mut vars: Vec<Var> = learnt.iter().map(|l| l.var()).collect();
        vars.sort_unstable();
        let n = vars.len();
        vars.dedup();
        assert_eq!(
            n,
            vars.len(),
            "learned clause repeats a variable: {learnt:?}"
        );
        if self.stats.conflicts % 4096 == 1 {
            self.check_invariants();
        }
    }
}

enum SearchOutcome {
    Sat,
    Unsat,
    Restart,
    BudgetExhausted,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(xs: &[i32], s: &mut Solver) -> Vec<Lit> {
        xs.iter()
            .map(|&x| {
                let v = Var::from_index((x.unsigned_abs() - 1) as usize);
                while s.num_vars() <= v.index() {
                    s.new_var();
                }
                Lit::with_sign(v, x > 0)
            })
            .collect()
    }

    fn add(s: &mut Solver, xs: &[i32]) {
        let c = lits(xs, s);
        s.add_clause(&c);
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        add(&mut s, &[1, 2]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn stats_delta_since_isolates_one_query() {
        let mut s = Solver::new();
        add(&mut s, &[1, 2]);
        add(&mut s, &[-1, 2]);
        add(&mut s, &[1, -2]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        let snapshot = s.stats();
        assert_eq!(snapshot.solve_calls, 1);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        let delta = s.stats().delta_since(&snapshot);
        assert_eq!(delta.solve_calls, 1, "exactly the second query");
        assert!(delta.propagations <= s.stats().propagations);
        // merging the snapshot and the delta reconstructs the total
        let mut rebuilt = snapshot;
        rebuilt.merge(&delta);
        assert_eq!(rebuilt.solve_calls, s.stats().solve_calls);
        assert_eq!(rebuilt.propagations, s.stats().propagations);
        assert_eq!(rebuilt.conflicts, s.stats().conflicts);
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        add(&mut s, &[1]);
        add(&mut s, &[-1]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        add(&mut s, &[1]);
        add(&mut s, &[-1, 2]);
        add(&mut s, &[-2, 3]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.value(Var::from_index(2)), Some(true));
    }

    #[test]
    fn assumptions_flip_result() {
        let mut s = Solver::new();
        add(&mut s, &[1, 2]);
        let a = Lit::neg(Var::from_index(0));
        let b = Lit::neg(Var::from_index(1));
        assert_eq!(s.solve(&[a]), SolveResult::Sat);
        assert_eq!(s.solve(&[a, b]), SolveResult::Unsat);
        // solver still usable and SAT without assumptions
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn failed_assumptions_nonempty() {
        let mut s = Solver::new();
        add(&mut s, &[1, 2]);
        let a = Lit::neg(Var::from_index(0));
        let b = Lit::neg(Var::from_index(1));
        assert_eq!(s.solve(&[a, b]), SolveResult::Unsat);
        assert!(!s.failed_assumptions().is_empty());
    }

    fn pigeonhole(np: usize, nh: usize) -> Solver {
        let mut s = Solver::new();
        for _ in 0..np * nh {
            s.new_var();
        }
        let v = |p: usize, h: usize| Lit::pos(Var::from_index(p * nh + h));
        for p in 0..np {
            let c: Vec<Lit> = (0..nh).map(|h| v(p, h)).collect();
            s.add_clause(&c);
        }
        for h in 0..nh {
            for p1 in 0..np {
                for p2 in (p1 + 1)..np {
                    s.add_clause(&[!v(p1, h), !v(p2, h)]);
                }
            }
        }
        s
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        assert_eq!(pigeonhole(3, 2).solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_5_into_4_unsat() {
        let mut s = pigeonhole(5, 4);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn pigeonhole_4_into_4_sat() {
        let mut s = pigeonhole(4, 4);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn xor_triangle_unsat() {
        // x1^x2=1, x2^x3=1, x1^x3=1 is unsat
        let mut s = Solver::new();
        for _ in 0..3 {
            s.new_var();
        }
        let x = Var::from_index;
        let xor1 = |s: &mut Solver, a: Var, b: Var| {
            s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
            s.add_clause(&[Lit::neg(a), Lit::neg(b)]);
        };
        xor1(&mut s, x(0), x(1));
        xor1(&mut s, x(1), x(2));
        xor1(&mut s, x(0), x(2));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn budget_exhaustion_returns_unknown_then_recovers() {
        let mut s = pigeonhole(7, 6);
        let r = s.solve_with_budget(
            &[],
            Budget {
                max_conflicts: 1,
                timeout: None,
            },
        );
        assert_eq!(r, SolveResult::Unknown);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn pre_set_stop_flag_returns_unknown() {
        let mut s = pigeonhole(7, 6);
        let flag = Arc::new(AtomicBool::new(true));
        s.set_stop_flag(Arc::clone(&flag));
        assert_eq!(s.solve(&[]), SolveResult::Unknown);
        // clearing the flag lets the same solver finish the instance
        flag.store(false, Ordering::Relaxed);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn configs_agree_on_answers() {
        use crate::config::{PhaseInit, RestartPolicy};
        let configs = [
            SolverConfig::default(),
            SolverConfig {
                var_decay: 0.90,
                restart: RestartPolicy::Geometric {
                    base: 64,
                    factor: 1.3,
                },
                phase_init: PhaseInit::AllTrue,
                ..SolverConfig::default()
            },
            SolverConfig {
                phase_init: PhaseInit::Random,
                randomize_order: true,
                seed: 0xfec,
                ..SolverConfig::default()
            },
        ];
        for config in configs {
            let mut unsat = pigeonhole(6, 5);
            // rebuild with the config under test
            let mut s = Solver::with_config(config);
            for _ in 0..unsat.num_vars() {
                s.new_var();
            }
            assert_eq!(s.config().var_decay, config.var_decay);
            // pigeonhole(6,5) is UNSAT regardless of heuristics
            assert_eq!(unsat.solve(&[]), SolveResult::Unsat);
            let mut sat = Solver::with_config(config);
            let a = sat.new_var();
            let b = sat.new_var();
            sat.add_clause(&[Lit::pos(a), Lit::pos(b)]);
            sat.add_clause(&[Lit::neg(a), Lit::pos(b)]);
            assert_eq!(sat.solve(&[]), SolveResult::Sat);
            assert_eq!(sat.value(b), Some(true));
        }
    }

    #[test]
    fn export_hook_sees_learned_clauses() {
        use std::sync::Mutex;
        let exported = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&exported);
        let mut s = pigeonhole(6, 5);
        s.set_export_hook(
            Box::new(move |lits, lbd| {
                sink.lock().unwrap().push((lits.to_vec(), lbd));
            }),
            u32::MAX,
        );
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        let n = exported.lock().unwrap().len() as u64;
        assert!(n > 0);
        assert_eq!(s.stats().exported_clauses, n);
    }

    #[test]
    fn progress_hook_fires_at_restart_boundaries() {
        use std::sync::Mutex;
        let seen: Arc<Mutex<Vec<SolverStats>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let mut s = pigeonhole(7, 6);
        s.set_progress_hook(Box::new(move |stats| {
            sink.lock().unwrap().push(*stats);
        }));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        let snapshots = seen.lock().unwrap();
        let restarts = s.stats().restarts;
        assert!(restarts > 0, "instance too easy to exercise restarts");
        assert_eq!(snapshots.len() as u64, restarts);
        // cumulative statistics are monotone across snapshots
        for w in snapshots.windows(2) {
            assert!(w[0].conflicts <= w[1].conflicts);
            assert!(w[0].propagations <= w[1].propagations);
            assert!(w[0].restarts < w[1].restarts);
        }
    }

    #[test]
    fn import_hook_clauses_are_used() {
        // Feed the refuting unit clauses of a tiny UNSAT instance in
        // via the import hook; the solver must pick them up at the
        // first restart boundary (start of search).
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        let mut fed = false;
        s.set_import_hook(Box::new(move || {
            if fed {
                Vec::new()
            } else {
                fed = true;
                vec![
                    (vec![Lit::neg(Var::from_index(0))], 1),
                    (vec![Lit::neg(Var::from_index(1))], 1),
                ]
            }
        }));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert_eq!(s.stats().imported_clauses, 2);
    }

    #[test]
    fn stats_merge_sums_fields() {
        let mut a = SolverStats {
            conflicts: 3,
            propagations: 10,
            exported_clauses: 1,
            ..SolverStats::default()
        };
        let b = SolverStats {
            conflicts: 4,
            imported_clauses: 2,
            rejected_clauses: 5,
            ..SolverStats::default()
        };
        a.merge(&b);
        assert_eq!(a.conflicts, 7);
        assert_eq!(a.propagations, 10);
        assert_eq!(a.exported_clauses, 1);
        assert_eq!(a.imported_clauses, 2);
        assert_eq!(a.rejected_clauses, 5);
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        assert!(s.add_clause(&[Lit::pos(a), Lit::pos(a), Lit::pos(b)]));
        assert!(s.add_clause(&[Lit::pos(a), Lit::neg(a)])); // tautology: dropped
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        s.new_var();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(!s.is_ok());
    }

    #[test]
    fn incremental_clause_addition_between_solves() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        s.add_clause(&[Lit::pos(vars[0]), Lit::pos(vars[1])]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        s.add_clause(&[Lit::neg(vars[0])]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.value(vars[1]), Some(true));
        s.add_clause(&[Lit::neg(vars[1])]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn model_respects_all_clauses_graph_coloring() {
        // triangle graph, 3 colors: vars node*3+color
        let mut s = Solver::new();
        for _ in 0..9 {
            s.new_var();
        }
        let v = |n: usize, c: usize| Lit::pos(Var::from_index(n * 3 + c));
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        for n in 0..3 {
            clauses.push((0..3).map(|c| v(n, c)).collect());
            for c1 in 0..3 {
                for c2 in (c1 + 1)..3 {
                    clauses.push(vec![!v(n, c1), !v(n, c2)]);
                }
            }
        }
        for (n1, n2) in [(0, 1), (1, 2), (0, 2)] {
            for c in 0..3 {
                clauses.push(vec![!v(n1, c), !v(n2, c)]);
            }
        }
        for c in &clauses {
            s.add_clause(c);
        }
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        for c in &clauses {
            assert!(
                c.iter().any(|&l| s.value(l.var()) == Some(l.is_pos())),
                "model violates clause {c:?}"
            );
        }
    }

    #[test]
    fn invariants_hold_through_search() {
        // exercise conflicts, backtracking and DB growth, sweeping the
        // invariants at interesting points (debug builds also sample
        // them after conflicts automatically)
        let mut s = pigeonhole(5, 4);
        s.check_invariants();
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        s.check_invariants();

        let mut s = pigeonhole(4, 4);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        s.check_invariants();
    }

    #[test]
    fn invariants_hold_incrementally_with_assumptions() {
        let mut s = Solver::new();
        add(&mut s, &[1, 2, 3]);
        add(&mut s, &[-1, -2]);
        let a = Lit::pos(Var::from_index(0));
        assert_eq!(s.solve(&[a]), SolveResult::Sat);
        s.check_invariants();
        add(&mut s, &[-1, -3]);
        add(&mut s, &[-1, 2, 3]); // with 1 assumed: ¬2, ¬3, but 2 ∨ 3 required
        assert_eq!(
            s.solve(&[a, Lit::neg(Var::from_index(1))]),
            SolveResult::Unsat
        );
        s.check_invariants();
    }

    #[test]
    fn proof_stream_records_inputs_and_refutation() {
        use crate::proof::{MemoryProofLogger, ProofStep};
        let log = MemoryProofLogger::new();
        let mut s = Solver::new();
        s.set_proof_logger(Box::new(log.clone()));
        add(&mut s, &[1, 2]);
        add(&mut s, &[-1, 2]);
        add(&mut s, &[1, -2]);
        add(&mut s, &[-1, -2]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        let steps = log.take_steps();
        let inputs = steps
            .iter()
            .filter(|s| matches!(s, ProofStep::Input(_)))
            .count();
        assert_eq!(inputs, 4, "every add_clause call is recorded");
        assert!(
            steps.iter().any(|s| matches!(s, ProofStep::Learn(_))),
            "an unsat run derives at least one lemma"
        );
        assert_eq!(
            steps.last(),
            Some(&ProofStep::Learn(Vec::new())),
            "the stream ends with the empty clause"
        );
    }

    #[test]
    fn proof_logging_off_by_default() {
        let s = Solver::new();
        assert!(!s.has_proof_logger());
    }

    #[test]
    #[should_panic(expected = "before any clause is added")]
    fn proof_logger_rejected_after_clauses() {
        use crate::proof::MemoryProofLogger;
        let mut s = Solver::new();
        add(&mut s, &[1]);
        s.set_proof_logger(Box::new(MemoryProofLogger::new()));
    }

    #[test]
    fn many_solves_with_rotating_assumptions() {
        // blocking-clause style enumeration: count models of a 3-var free space
        let mut s = Solver::new();
        let vs: Vec<Var> = (0..3).map(|_| s.new_var()).collect();
        let mut count = 0;
        while s.solve(&[]) == SolveResult::Sat {
            count += 1;
            let block: Vec<Lit> = vs
                .iter()
                .map(|&v| Lit::with_sign(v, s.value(v) != Some(true)))
                .collect();
            s.add_clause(&block);
            assert!(count <= 8, "enumerated too many models");
        }
        assert_eq!(count, 8);
    }
}
