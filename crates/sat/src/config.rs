//! Solver heuristic configuration.
//!
//! Every knob the CDCL engine used to hard-code is a public field here,
//! so a portfolio (`fec-portfolio`) can run *diversified* workers over
//! the same formula: different restart schedules, branching decay,
//! initial phases, and tie-break orders explore different parts of the
//! search space, and the first worker to finish wins.
//!
//! [`SolverConfig::default`] reproduces the historical behaviour
//! exactly, so a solver built with `Solver::new()` is bit-for-bit the
//! solver this crate always had.

/// Restart schedule.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum RestartPolicy {
    /// Luby sequence (1 1 2 1 1 2 4 ...) scaled by `base` conflicts.
    /// The classic MiniSat default: aggressive early, provably within a
    /// log factor of the optimal schedule.
    Luby {
        /// Conflicts per unit of the sequence.
        base: u64,
    },
    /// Geometric growth: restart `i` allows `base * factor^i` conflicts.
    /// Slower cadence that favours deep dives — a useful portfolio
    /// complement to Luby.
    Geometric {
        /// Conflicts allowed before the first restart.
        base: u64,
        /// Growth factor (> 1.0).
        factor: f64,
    },
}

impl RestartPolicy {
    /// Conflict limit of the `idx`-th restart interval (0-based).
    pub(crate) fn limit(self, idx: u64) -> u64 {
        match self {
            RestartPolicy::Luby { base } => base.saturating_mul(luby(idx)),
            RestartPolicy::Geometric { base, factor } => {
                let scaled = base as f64 * factor.powi(idx.min(1 << 20) as i32);
                if scaled >= u64::MAX as f64 {
                    u64::MAX
                } else {
                    scaled as u64
                }
            }
        }
    }
}

/// Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
pub(crate) fn luby(mut i: u64) -> u64 {
    // size of the smallest complete subsequence containing index i
    loop {
        let mut k = 1u32;
        while (1u64 << k) - 1 < i + 1 {
            k += 1;
        }
        if (1u64 << k) - 1 == i + 1 {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
    }
}

/// Initial polarity assigned to fresh variables (phase saving takes
/// over after the first assignment).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PhaseInit {
    /// All variables start false (the historical default).
    AllFalse,
    /// All variables start true.
    AllTrue,
    /// Seeded pseudo-random initial phases.
    Random,
}

/// Knobs of the SatELite-style simplification pipeline (see the
/// `simplify` module and `DESIGN.md` § Simplification).
///
/// The default is **fully off**, preserving the historical solver
/// behaviour bit for bit; [`SimplifyConfig::on`] enables the whole
/// pipeline with balanced budgets. Each technique has its own switch so
/// portfolio workers can run *different* simplifier mixes.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SimplifyConfig {
    /// Run the pipeline at the start of a `solve` call whenever new
    /// clauses arrived since the last pass (preprocessing).
    pub preprocess: bool,
    /// Run the pipeline again after this many restarts during search
    /// (inprocessing), with the spacing *doubling* after each run, so
    /// the total inprocessing cost stays a geometrically bounded
    /// fraction of the search; `0` disables inprocessing.
    pub inprocess_interval: u64,
    /// Bounded variable elimination (clause distribution).
    pub bve: bool,
    /// Backward subsumption + self-subsuming resolution.
    pub subsume: bool,
    /// Failed-literal probing.
    pub probe: bool,
    /// Clause vivification (distillation).
    pub vivify: bool,
    /// BVE may grow the clause count by at most this many clauses per
    /// eliminated variable (0 = never grow, the SatELite default).
    pub bve_grow: usize,
    /// BVE skips an elimination producing any resolvent longer than this.
    pub bve_clause_limit: usize,
    /// BVE skips variables with more than this many occurrences in one
    /// phase (quadratic resolvent blow-up guard).
    pub bve_occ_limit: usize,
    /// Signature/inclusion checks allowed per subsumption pass.
    pub subsume_budget: u64,
    /// Literals probed per pass.
    pub probe_budget: u64,
    /// Clauses vivified per pass.
    pub vivify_budget: u64,
    /// Cleanup → subsume → BVE fixpoint rounds per pass.
    pub rounds: u32,
}

impl SimplifyConfig {
    /// Everything disabled — the historical solver, bit for bit.
    pub fn off() -> Self {
        SimplifyConfig {
            preprocess: false,
            inprocess_interval: 0,
            bve: false,
            subsume: false,
            probe: false,
            vivify: false,
            ..Self::budget_defaults()
        }
    }

    /// The full pipeline with balanced effort budgets. The
    /// inprocessing cadence is deliberately lazy (first pass after 100
    /// restarts, doubling after that): a pass costs a full occurrence
    /// scan, which short solves cannot amortize — they are served by
    /// preprocessing alone.
    pub fn on() -> Self {
        SimplifyConfig {
            preprocess: true,
            inprocess_interval: 100,
            bve: true,
            subsume: true,
            probe: true,
            vivify: true,
            ..Self::budget_defaults()
        }
    }

    fn budget_defaults() -> Self {
        SimplifyConfig {
            preprocess: false,
            inprocess_interval: 0,
            bve: false,
            subsume: false,
            probe: false,
            vivify: false,
            bve_grow: 0,
            bve_clause_limit: 24,
            bve_occ_limit: 20,
            subsume_budget: 2_000_000,
            probe_budget: 4_000,
            vivify_budget: 1_000,
            rounds: 3,
        }
    }

    /// `true` when any entry point (pre- or inprocessing) is active.
    pub fn enabled(&self) -> bool {
        self.preprocess || self.inprocess_interval > 0
    }
}

impl Default for SimplifyConfig {
    fn default() -> Self {
        Self::off()
    }
}

/// Heuristic knobs of the CDCL engine.
///
/// All randomness is driven by the explicit `seed` through a
/// deterministic xorshift generator, so two solvers with equal configs
/// behave identically — the substrate for the portfolio's
/// deterministic mode.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SolverConfig {
    /// EVSIDS variable-activity decay (activity increment grows by
    /// `1/var_decay` per conflict). Smaller = more aggressive focus on
    /// recent conflicts.
    pub var_decay: f64,
    /// Clause-activity decay for learnt-DB retention.
    pub clause_decay: f64,
    /// Restart schedule.
    pub restart: RestartPolicy,
    /// Initial polarity of fresh variables.
    pub phase_init: PhaseInit,
    /// Perturb the initial branching order with tiny seeded activities
    /// (breaks the index-order tie among untouched variables).
    pub randomize_order: bool,
    /// Seed for `phase_init: Random` and `randomize_order`.
    pub seed: u64,
    /// Pre-/inprocessing pipeline (off by default).
    pub simplify: SimplifyConfig,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            var_decay: 0.95,
            clause_decay: 0.999,
            restart: RestartPolicy::Luby { base: 100 },
            phase_init: PhaseInit::AllFalse,
            randomize_order: false,
            seed: 0,
            simplify: SimplifyConfig::off(),
        }
    }
}

/// xorshift64* — the solver's only randomness source; deterministic
/// and dependency-free.
#[derive(Clone, Copy, Debug)]
pub(crate) struct XorShift64(u64);

impl XorShift64 {
    pub fn new(seed: u64) -> XorShift64 {
        // avoid the all-zero fixed point
        XorShift64(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn restart_limits() {
        let l = RestartPolicy::Luby { base: 100 };
        assert_eq!(l.limit(0), 100);
        assert_eq!(l.limit(2), 200);
        let g = RestartPolicy::Geometric {
            base: 100,
            factor: 2.0,
        };
        assert_eq!(g.limit(0), 100);
        assert_eq!(g.limit(3), 800);
    }

    #[test]
    fn default_matches_historical_constants() {
        let c = SolverConfig::default();
        assert_eq!(c.var_decay, 0.95);
        assert_eq!(c.clause_decay, 0.999);
        assert_eq!(c.restart, RestartPolicy::Luby { base: 100 });
        assert_eq!(c.phase_init, PhaseInit::AllFalse);
        assert!(!c.randomize_order);
        // simplification is opt-in: the default solver never rewrites
        // its clause database
        assert_eq!(c.simplify, SimplifyConfig::off());
        assert!(!c.simplify.enabled());
    }

    #[test]
    fn simplify_presets() {
        let on = SimplifyConfig::on();
        assert!(on.enabled());
        assert!(on.preprocess && on.bve && on.subsume && on.probe && on.vivify);
        assert!(on.inprocess_interval > 0);
        let off = SimplifyConfig::off();
        assert!(!off.enabled());
        assert_eq!(off, SimplifyConfig::default());
        // presets share the same effort budgets
        assert_eq!(on.bve_clause_limit, off.bve_clause_limit);
    }

    #[test]
    fn xorshift_is_deterministic_and_nonconstant() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
        let mut c = XorShift64::new(43);
        assert_ne!(c.next_u64(), xs[0]);
    }
}
