//! Building blocks of the SatELite-style simplifier.
//!
//! This module holds the *pure* components of the pre-/inprocessing
//! pipeline — the occurrence-list index, clause signatures, the
//! subsumption/strengthening planner, bounded-variable-elimination
//! resolvent construction, and the solution-reconstruction stack. They
//! operate on plain literal vectors so they can be property-tested
//! against naive oracles in isolation (`tests/simplify_props.rs`); the
//! `Solver` applies their decisions to its clause database, watch
//! lists, and proof stream (see `solver/inprocess.rs`).
//!
//! Every transformation planned here is DRAT-expressible without RAT
//! steps: a strengthened clause and every BVE resolvent is RUP while
//! its parent clauses are still live, so the plans are always "log the
//! derived clauses as `Learn`, then `Delete` the originals" — the
//! order the applier follows (see DESIGN.md § Simplification).

use crate::types::{Lit, Var};

/// 64-bit variable signature of a clause: bit `v % 64` is set for every
/// variable `v` occurring in it. If `sig(C) & !sig(D) != 0` then `C`
/// cannot subsume (or self-subsume) `D` — the classic SatELite filter
/// that rejects most candidate pairs with one AND.
pub fn signature(lits: &[Lit]) -> u64 {
    lits.iter()
        .fold(0u64, |s, l| s | 1u64 << (l.var().index() % 64))
}

/// `true` iff `small` ⊆ `big` as literal sets (order-independent).
pub fn subsumes(small: &[Lit], big: &[Lit]) -> bool {
    small.len() <= big.len() && small.iter().all(|l| big.contains(l))
}

/// Self-subsuming-resolution test: returns `Some(l)` when `small`
/// strengthens `big` by resolving on `l` — i.e. `l ∈ small`,
/// `¬l ∈ big`, and `small \ {l} ⊆ big`. The resolvent `big \ {¬l}`
/// then subsumes `big`, so `¬l` can be removed from it. Returns `None`
/// when `small` plainly subsumes `big` or does neither.
pub fn strengthens_on(small: &[Lit], big: &[Lit]) -> Option<Lit> {
    if small.len() > big.len() {
        return None;
    }
    let mut pivot = None;
    for &l in small {
        if big.contains(&l) {
            continue;
        }
        if big.contains(&!l) {
            if pivot.is_some() {
                return None; // two flipped literals: resolvent is no subset
            }
            pivot = Some(l);
        } else {
            return None; // literal of `small` missing from `big` entirely
        }
    }
    pivot
}

/// Occurrence-list index: for each literal, the ids of the clauses
/// containing it. Ids are caller-chosen `u32`s (the solver uses clause
/// database indices, the planner uses snapshot positions).
#[derive(Clone, Debug, Default)]
pub struct OccIndex {
    occs: Vec<Vec<u32>>,
}

impl OccIndex {
    /// An empty index over `num_vars` variables.
    pub fn new(num_vars: usize) -> OccIndex {
        OccIndex {
            occs: vec![Vec::new(); 2 * num_vars],
        }
    }

    /// Registers clause `id` under every literal of `lits`.
    pub fn insert(&mut self, id: u32, lits: &[Lit]) {
        for &l in lits {
            self.occs[l.index()].push(id);
        }
    }

    /// Removes clause `id` from every literal of `lits`.
    pub fn remove(&mut self, id: u32, lits: &[Lit]) {
        for &l in lits {
            self.remove_lit(id, l);
        }
    }

    /// Removes clause `id` from the occurrence list of `l` alone (used
    /// when a single literal is stripped by strengthening).
    pub fn remove_lit(&mut self, id: u32, l: Lit) {
        let list = &mut self.occs[l.index()];
        if let Some(p) = list.iter().position(|&x| x == id) {
            list.swap_remove(p);
        }
    }

    /// Ids of the clauses containing `l`.
    pub fn occs(&self, l: Lit) -> &[u32] {
        &self.occs[l.index()]
    }

    /// Number of clauses containing `l`.
    pub fn count(&self, l: Lit) -> usize {
        self.occs[l.index()].len()
    }
}

/// One planned backward-subsumption or strengthening step, in the
/// order the planner discovered (and the applier must replay) them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SubsumeAction {
    /// Clause `by` is redundant (learnt) but subsumes the irredundant
    /// clause it is about to delete: it must be promoted to an
    /// original clause, or a later learnt-DB reduction could drop the
    /// only remaining witness of that constraint.
    Promote { target: u32 },
    /// Clause `target` is subsumed by clause `by`: delete it.
    Delete { target: u32, by: u32 },
    /// Clause `target` is strengthened by removing `drop`
    /// (self-subsuming resolution with clause `by`).
    Strengthen { target: u32, drop: Lit, by: u32 },
}

/// Plans backward subsumption and self-subsuming resolution to a
/// budgeted fixpoint.
///
/// `clauses[i] = None` marks an absent slot; `learnt[i]` tags
/// redundant clauses (used for promotion decisions). The vector is
/// mutated to the post-plan state, and the returned actions, applied
/// in order to the *original* state, reproduce it — the contract the
/// solver relies on to keep its clause database, proof stream, and
/// this plan in sync. `budget` counts candidate signature checks and
/// is decremented in place; planning stops when it hits zero.
pub fn plan_subsumption(
    clauses: &mut [Option<Vec<Lit>>],
    learnt: &mut [bool],
    num_vars: usize,
    budget: &mut u64,
) -> Vec<SubsumeAction> {
    debug_assert_eq!(clauses.len(), learnt.len());
    let mut occ = OccIndex::new(num_vars);
    let mut sigs = vec![0u64; clauses.len()];
    for (i, c) in clauses.iter().enumerate() {
        if let Some(lits) = c {
            occ.insert(i as u32, lits);
            sigs[i] = signature(lits);
        }
    }
    let mut actions = Vec::new();
    let mut queue: std::collections::VecDeque<u32> = (0..clauses.len() as u32).collect();
    let mut queued = vec![true; clauses.len()];
    while let Some(i) = queue.pop_front() {
        queued[i as usize] = false;
        if *budget == 0 {
            break;
        }
        let Some(c) = clauses[i as usize].clone() else {
            continue;
        };
        if c.is_empty() {
            continue;
        }
        // a clause c subsumes or strengthens only holds d that contain
        // every variable of c, so scanning both phases of c's
        // least-frequent variable covers all candidates: a subsumed d
        // contains `best` itself, a strengthened one `best` or `¬best`
        let best = c
            .iter()
            .copied()
            .min_by_key(|&l| occ.count(l) + occ.count(!l))
            .unwrap();
        let mut cand: Vec<u32> = Vec::with_capacity(occ.count(best) + occ.count(!best));
        cand.extend_from_slice(occ.occs(best));
        cand.extend_from_slice(occ.occs(!best));
        for j in cand {
            if j == i || clauses[j as usize].is_none() {
                continue;
            }
            if *budget == 0 {
                break;
            }
            *budget -= 1;
            if sigs[i as usize] & !sigs[j as usize] != 0 {
                continue; // signature filter: c has a var d lacks
            }
            let d = clauses[j as usize].as_ref().unwrap();
            if subsumes(&c, d) {
                if learnt[i as usize] && !learnt[j as usize] {
                    learnt[i as usize] = false;
                    actions.push(SubsumeAction::Promote { target: i });
                }
                actions.push(SubsumeAction::Delete { target: j, by: i });
                occ.remove(j, clauses[j as usize].as_ref().unwrap());
                clauses[j as usize] = None;
            } else if let Some(pivot) = strengthens_on(&c, d) {
                actions.push(SubsumeAction::Strengthen {
                    target: j,
                    drop: !pivot,
                    by: i,
                });
                let dd = clauses[j as usize].as_mut().unwrap();
                dd.retain(|&l| l != !pivot);
                occ.remove_lit(j, !pivot);
                sigs[j as usize] = signature(dd);
                if !queued[j as usize] {
                    queued[j as usize] = true;
                    queue.push_back(j); // may now subsume others
                }
            }
        }
    }
    actions
}

/// All non-tautological resolvents of `pos` × `neg` on `v`, or `None`
/// when the elimination is rejected: more resolvents than
/// `pos.len() + neg.len() + max_growth`, or any resolvent longer than
/// `clause_limit`. Resolvents come back sorted and deduplicated.
pub fn bve_resolvents(
    v: Var,
    pos: &[Vec<Lit>],
    neg: &[Vec<Lit>],
    max_growth: usize,
    clause_limit: usize,
) -> Option<Vec<Vec<Lit>>> {
    let limit = pos.len() + neg.len() + max_growth;
    let mut out: Vec<Vec<Lit>> = Vec::new();
    for p in pos {
        debug_assert!(p.contains(&Lit::pos(v)));
        for n in neg {
            debug_assert!(n.contains(&Lit::neg(v)));
            let mut r: Vec<Lit> = p
                .iter()
                .chain(n.iter())
                .copied()
                .filter(|&l| l.var() != v)
                .collect();
            r.sort_unstable();
            r.dedup();
            // adjacent sorted literals of one variable ⇒ tautology
            if r.windows(2).any(|w| w[1] == !w[0]) {
                continue;
            }
            if r.len() > clause_limit {
                return None;
            }
            out.push(r);
        }
    }
    out.sort();
    out.dedup();
    if out.len() > limit {
        return None;
    }
    Some(out)
}

/// The solution-reconstruction stack (MiniSat `SimpSolver`-style
/// "elimination table").
///
/// Each eliminated variable pushes a record holding *every* original
/// clause that contained it at elimination time. Extending a model of
/// the post-elimination formula in **reverse** elimination order —
/// choosing for each variable a value satisfying all of its stored
/// clauses (one always exists because all non-tautological resolvents
/// were added) — yields a model of the pre-elimination formula.
///
/// Records are deactivated when a variable is *restored* (re-added for
/// incremental use); `extend_model` skips them.
#[derive(Clone, Debug, Default)]
pub struct ReconStack {
    records: Vec<ReconRecord>,
    active: usize,
}

#[derive(Clone, Debug)]
struct ReconRecord {
    var: Var,
    clauses: Vec<Vec<Lit>>,
    active: bool,
}

impl ReconStack {
    /// An empty stack.
    pub fn new() -> ReconStack {
        ReconStack::default()
    }

    /// Number of active (non-restored) elimination records.
    pub fn active_records(&self) -> usize {
        self.active
    }

    /// Pushes the elimination record of `var`: the original clauses
    /// containing it (either phase) at elimination time.
    pub fn push(&mut self, var: Var, clauses: Vec<Vec<Lit>>) {
        debug_assert!(clauses.iter().all(|c| c.iter().any(|l| l.var() == var)));
        self.records.push(ReconRecord {
            var,
            clauses,
            active: true,
        });
        self.active += 1;
    }

    /// Deactivates the most recent active record of `var` and returns
    /// its stored clauses (for re-adding them to the solver). `None`
    /// when no active record for `var` exists.
    pub fn deactivate(&mut self, var: Var) -> Option<Vec<Vec<Lit>>> {
        let rec = self
            .records
            .iter_mut()
            .rev()
            .find(|r| r.active && r.var == var)?;
        rec.active = false;
        self.active -= 1;
        Some(std::mem::take(&mut rec.clauses))
    }

    /// Extends `model` (indexed by variable) over the eliminated
    /// variables, newest elimination first. Entries of eliminated
    /// variables are overwritten; all other entries are read-only.
    /// Unassigned (`None`) literals evaluate as false, matching the
    /// solver's treatment of don't-care variables.
    pub fn extend_model(&self, model: &mut [Option<bool>]) {
        for rec in self.records.iter().rev().filter(|r| r.active) {
            let vi = rec.var.index();
            let satisfied_with = |val: bool| {
                rec.clauses.iter().all(|c| {
                    c.iter().any(|&l| {
                        if l.var() == rec.var {
                            l.is_pos() == val
                        } else {
                            model.get(l.var().index()).copied().flatten() == Some(l.is_pos())
                        }
                    })
                })
            };
            // one of the two values always works: a model of the
            // resolvents cannot falsify a pos- and a neg-clause pair
            // simultaneously (their resolvent would be falsified too)
            let val = if satisfied_with(false) {
                false
            } else {
                debug_assert!(
                    satisfied_with(true),
                    "reconstruction failed for {:?}",
                    rec.var
                );
                true
            };
            if vi < model.len() {
                model[vi] = Some(val);
            }
        }
    }
}
