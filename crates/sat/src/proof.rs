//! DRAT proof logging.
//!
//! When a [`ProofLogger`](crate::ProofLogger) is installed on a
//! [`Solver`](crate::Solver), the solver emits a chronological stream of
//! [`ProofStep`]s:
//!
//! - [`ProofStep::Input`] — every clause handed to `add_clause`,
//!   *before* any solver-side simplification, so the stream doubles as
//!   a faithful record of the input formula;
//! - [`ProofStep::Learn`] — every clause derived by conflict analysis
//!   (including learned units and the empty clause on a level-0
//!   refutation), logged after minimization;
//! - [`ProofStep::Delete`] — every learnt clause tombstoned by database
//!   reduction.
//!
//! Learn/Delete steps are exactly DRAT addition and deletion lines; an
//! independent checker (the `fec-drat` crate) validates each learned
//! clause by reverse unit propagation over the inputs plus previously
//! accepted lemmas. Because the solver only ever *appends* to the
//! stream, incremental solving (multiple `solve` calls, clause additions
//! in between) is certified by replaying one stream.
//!
//! The logger is behind an `Option` checked once per learned/deleted
//! clause — never in the propagation loop — so a disabled logger costs
//! one never-taken branch per *conflict*, which is unmeasurable (see the
//! `sat_proof_overhead` bench).

use crate::types::Lit;
use std::cell::RefCell;
use std::io::Write;
use std::rc::Rc;

/// One entry of a proof stream.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProofStep {
    /// A clause added by the user (pre-simplification).
    Input(Vec<Lit>),
    /// A clause derived by the solver (DRAT addition line).
    Learn(Vec<Lit>),
    /// A learnt clause removed from the database (DRAT deletion line).
    Delete(Vec<Lit>),
}

/// Receiver for the solver's proof stream.
///
/// Implementations must not panic on any well-formed input; the solver
/// calls these from inside its search loop.
pub trait ProofLogger {
    /// An input clause, exactly as passed to `add_clause`.
    fn input(&mut self, lits: &[Lit]);
    /// A derived clause (empty slice = the empty clause / refutation).
    fn learn(&mut self, lits: &[Lit]);
    /// A deleted learnt clause.
    fn delete(&mut self, lits: &[Lit]);
}

/// Collects the proof stream in memory.
///
/// Cloning yields a second handle to the *same* stream, which is how a
/// caller keeps access after moving one handle into the solver:
///
/// ```
/// use fec_sat::{MemoryProofLogger, Solver, Lit, SolveResult};
///
/// let log = MemoryProofLogger::new();
/// let mut s = Solver::new();
/// s.set_proof_logger(Box::new(log.clone()));
/// let v = s.new_var();
/// s.add_clause(&[Lit::pos(v)]);
/// s.add_clause(&[Lit::neg(v)]);
/// assert_eq!(s.solve(&[]), SolveResult::Unsat);
/// assert!(!log.take_steps().is_empty());
/// ```
#[derive(Clone, Default)]
pub struct MemoryProofLogger {
    steps: Rc<RefCell<Vec<ProofStep>>>,
}

impl MemoryProofLogger {
    /// An empty stream.
    pub fn new() -> MemoryProofLogger {
        MemoryProofLogger::default()
    }

    /// Removes and returns all steps logged since the last call.
    pub fn take_steps(&self) -> Vec<ProofStep> {
        std::mem::take(&mut self.steps.borrow_mut())
    }

    /// Number of steps currently buffered.
    pub fn len(&self) -> usize {
        self.steps.borrow().len()
    }

    /// `true` when no steps are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ProofLogger for MemoryProofLogger {
    fn input(&mut self, lits: &[Lit]) {
        self.steps
            .borrow_mut()
            .push(ProofStep::Input(lits.to_vec()));
    }
    fn learn(&mut self, lits: &[Lit]) {
        self.steps
            .borrow_mut()
            .push(ProofStep::Learn(lits.to_vec()));
    }
    fn delete(&mut self, lits: &[Lit]) {
        self.steps
            .borrow_mut()
            .push(ProofStep::Delete(lits.to_vec()));
    }
}

/// Streams the proof as standard DRAT text (one clause per line,
/// DIMACS literals, `0`-terminated; deletions prefixed with `d`).
/// Input clauses are emitted as `c i ...` comment lines so one file
/// carries both the formula and the proof for external cross-checking;
/// standard DRAT tools ignore comment lines.
pub struct DratTextLogger<W: Write> {
    out: W,
}

impl<W: Write> DratTextLogger<W> {
    /// Wraps a writer. Buffer it (`BufWriter`) for file targets.
    pub fn new(out: W) -> DratTextLogger<W> {
        DratTextLogger { out }
    }

    /// Unwraps the inner writer (e.g. to flush or inspect).
    pub fn into_inner(self) -> W {
        self.out
    }

    fn write_clause(&mut self, prefix: &str, lits: &[Lit]) {
        let mut line = String::with_capacity(prefix.len() + 6 * lits.len() + 2);
        line.push_str(prefix);
        for l in lits {
            line.push_str(&l.to_string());
            line.push(' ');
        }
        line.push_str("0\n");
        // a full disk is not a solver error; certification uses the
        // in-memory stream, the file is for external tools
        let _ = self.out.write_all(line.as_bytes());
    }
}

impl<W: Write> ProofLogger for DratTextLogger<W> {
    fn input(&mut self, lits: &[Lit]) {
        self.write_clause("c i ", lits);
    }
    fn learn(&mut self, lits: &[Lit]) {
        self.write_clause("", lits);
    }
    fn delete(&mut self, lits: &[Lit]) {
        self.write_clause("d ", lits);
    }
}

/// Forwards every step to two loggers (e.g. memory + DRAT file).
pub struct TeeProofLogger<A, B>(pub A, pub B);

impl<A: ProofLogger, B: ProofLogger> ProofLogger for TeeProofLogger<A, B> {
    fn input(&mut self, lits: &[Lit]) {
        self.0.input(lits);
        self.1.input(lits);
    }
    fn learn(&mut self, lits: &[Lit]) {
        self.0.learn(lits);
        self.1.learn(lits);
    }
    fn delete(&mut self, lits: &[Lit]) {
        self.0.delete(lits);
        self.1.delete(lits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Var;

    fn lit(x: i32) -> Lit {
        Lit::with_sign(Var::from_index((x.unsigned_abs() - 1) as usize), x > 0)
    }

    #[test]
    fn memory_logger_shares_stream_across_clones() {
        let a = MemoryProofLogger::new();
        let mut b = a.clone();
        b.learn(&[lit(1), lit(-2)]);
        assert_eq!(a.len(), 1);
        let steps = a.take_steps();
        assert_eq!(steps, vec![ProofStep::Learn(vec![lit(1), lit(-2)])]);
        assert!(a.is_empty() && b.is_empty());
    }

    #[test]
    fn drat_text_format() {
        let mut l = DratTextLogger::new(Vec::new());
        l.input(&[lit(1), lit(2)]);
        l.learn(&[lit(-1)]);
        l.learn(&[]);
        l.delete(&[lit(-1)]);
        let text = String::from_utf8(l.into_inner()).unwrap();
        assert_eq!(text, "c i 1 2 0\n-1 0\n0\nd -1 0\n");
    }

    #[test]
    fn tee_duplicates() {
        let mem = MemoryProofLogger::new();
        let mut tee = TeeProofLogger(mem.clone(), DratTextLogger::new(Vec::new()));
        tee.learn(&[lit(3)]);
        assert_eq!(mem.len(), 1);
        let text = String::from_utf8(tee.1.into_inner()).unwrap();
        assert_eq!(text, "3 0\n");
    }
}
