//! Indexed max-heap ordered by variable activity (the VSIDS order).
//!
//! A plain `BinaryHeap` cannot efficiently update priorities or test
//! membership, both of which the solver needs on every conflict, so this
//! is the classic MiniSat indexed heap: positions are tracked per
//! variable, and `sift_up` is invoked when an activity is bumped.

use crate::types::Var;

#[derive(Default)]
pub(crate) struct ActivityHeap {
    /// Heap of variable indices.
    heap: Vec<u32>,
    /// `pos[v]` = index of `v` in `heap`, or `NONE`.
    pos: Vec<u32>,
}

const NONE: u32 = u32::MAX;

impl ActivityHeap {
    pub fn new() -> Self {
        ActivityHeap::default()
    }

    /// Registers a new variable (initially in the heap).
    pub fn push_new_var(&mut self, v: Var, act: &[f64]) {
        debug_assert_eq!(v.index(), self.pos.len());
        self.pos.push(NONE);
        self.insert(v, act);
    }

    pub fn contains(&self, v: Var) -> bool {
        self.pos[v.index()] != NONE
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Inserts `v` if absent.
    pub fn insert(&mut self, v: Var, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        let i = self.heap.len();
        self.heap.push(v.0);
        self.pos[v.index()] = i as u32;
        self.sift_up(i, act);
    }

    /// Removes and returns the variable with highest activity.
    pub fn pop_max(&mut self, act: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().unwrap();
        self.pos[top as usize] = NONE;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, act);
        }
        Some(Var(top))
    }

    /// Restores heap order after `v`'s activity increased.
    pub fn update(&mut self, v: Var, act: &[f64]) {
        if let Some(i) = self.position(v) {
            self.sift_up(i, act);
        }
    }

    fn position(&self, v: Var) -> Option<usize> {
        let p = self.pos[v.index()];
        (p != NONE).then_some(p as usize)
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i] as usize] <= act[self.heap[parent] as usize] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l] as usize] > act[self.heap[best] as usize] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r] as usize] > act[self.heap[best] as usize] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i] as usize] = i as u32;
        self.pos[self.heap[j] as usize] = j as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let act = vec![1.0, 5.0, 3.0, 4.0, 2.0];
        let mut h = ActivityHeap::new();
        for i in 0..5 {
            h.push_new_var(Var::from_index(i), &act);
        }
        let order: Vec<usize> = std::iter::from_fn(|| h.pop_max(&act).map(Var::index)).collect();
        assert_eq!(order, [1, 3, 2, 4, 0]);
        assert!(h.is_empty());
    }

    #[test]
    fn reinsert_after_pop() {
        let act = vec![1.0, 2.0];
        let mut h = ActivityHeap::new();
        h.push_new_var(Var::from_index(0), &act);
        h.push_new_var(Var::from_index(1), &act);
        let v = h.pop_max(&act).unwrap();
        assert_eq!(v.index(), 1);
        assert!(!h.contains(v));
        h.insert(v, &act);
        assert!(h.contains(v));
        assert_eq!(h.pop_max(&act).unwrap().index(), 1);
    }

    #[test]
    fn bump_resorts() {
        let mut act = vec![1.0, 2.0, 3.0];
        let mut h = ActivityHeap::new();
        for i in 0..3 {
            h.push_new_var(Var::from_index(i), &act);
        }
        act[0] = 10.0;
        h.update(Var::from_index(0), &act);
        assert_eq!(h.pop_max(&act).unwrap().index(), 0);
    }
}
