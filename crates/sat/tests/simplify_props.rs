//! Property tests for the pure simplification components
//! (`fec_sat::simplify`), cross-checked against naive O(n²) oracles.

use fec_sat::simplify::{
    bve_resolvents, plan_subsumption, signature, strengthens_on, subsumes, OccIndex, ReconStack,
    SubsumeAction,
};
use fec_sat::{Lit, Var};
use proptest::prelude::*;

/// A random clause over `nv` variables, sorted + deduped + tautology-free
/// (the normal form every attached solver clause has).
fn random_clause(rng: &mut proptest::TestRng, nv: usize, max_len: usize) -> Vec<Lit> {
    let len = 1 + rng.below(max_len as u64) as usize;
    let mut lits: Vec<Lit> = (0..len)
        .map(|_| {
            Lit::with_sign(
                Var::from_index(rng.below(nv as u64) as usize),
                rng.below(2) == 0,
            )
        })
        .collect();
    lits.sort_unstable();
    lits.dedup();
    // drop one phase of any complementary pair to avoid tautologies
    let mut out: Vec<Lit> = Vec::with_capacity(lits.len());
    for l in lits {
        if out.last() == Some(&!l) {
            continue;
        }
        out.push(l);
    }
    out
}

fn random_formula(rng: &mut proptest::TestRng, nv: usize, nc: usize) -> Vec<Vec<Lit>> {
    (0..nc).map(|_| random_clause(rng, nv, 4)).collect()
}

/// Truth-value of a clause under a total assignment.
fn clause_sat(c: &[Lit], model: &[bool]) -> bool {
    c.iter().any(|l| model[l.var().index()] == l.is_pos())
}

fn formula_sat(f: &[Vec<Lit>], model: &[bool]) -> bool {
    f.iter().all(|c| clause_sat(c, model))
}

/// Exhaustive model enumeration (instances stay ≤ 12 variables).
fn all_models(nv: usize) -> impl Iterator<Item = Vec<bool>> {
    (0u32..(1 << nv)).map(move |bits| (0..nv).map(|i| bits >> i & 1 == 1).collect())
}

#[test]
fn occ_index_tracks_inserts_and_removals() {
    let mut rng = proptest::TestRng::deterministic("occ_index_tracks");
    for _ in 0..200 {
        let nv = 2 + rng.below(8) as usize;
        let nc = 1 + rng.below(12) as usize;
        let formula = random_formula(&mut rng, nv, nc);
        let mut occ = OccIndex::new(nv);
        for (i, c) in formula.iter().enumerate() {
            occ.insert(i as u32, c);
        }
        // oracle: counts and memberships against a direct scan
        for vi in 0..nv {
            for l in [Lit::pos(Var::from_index(vi)), Lit::neg(Var::from_index(vi))] {
                let expect: Vec<u32> = formula
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.contains(&l))
                    .map(|(i, _)| i as u32)
                    .collect();
                assert_eq!(occ.count(l), expect.len());
                let mut got: Vec<u32> = occ.occs(l).to_vec();
                got.sort_unstable();
                assert_eq!(got, expect);
            }
        }
        // removals: drop half the clauses, then every list must shrink
        for (i, c) in formula.iter().enumerate().filter(|(i, _)| i % 2 == 0) {
            occ.remove(i as u32, c);
        }
        for vi in 0..nv {
            for l in [Lit::pos(Var::from_index(vi)), Lit::neg(Var::from_index(vi))] {
                let expect: Vec<u32> = formula
                    .iter()
                    .enumerate()
                    .filter(|(i, c)| i % 2 == 1 && c.contains(&l))
                    .map(|(i, _)| i as u32)
                    .collect();
                let mut got: Vec<u32> = occ.occs(l).to_vec();
                got.sort_unstable();
                assert_eq!(got, expect, "stale occurrence after removal");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// The signature filter is sound: a clause whose signature has a
    /// bit outside another's can never subsume or strengthen it.
    #[test]
    fn prop_signature_filter_sound(seed in any::<u64>()) {
        let mut rng = proptest::TestRng::deterministic(&format!("sig{seed}"));
        let nv = 2 + rng.below(70) as usize; // > 64 exercises bit aliasing
        let c = random_clause(&mut rng, nv, 5);
        let d = random_clause(&mut rng, nv, 5);
        if signature(&c) & !signature(&d) != 0 {
            prop_assert!(!subsumes(&c, &d), "filter rejected a real subsumption");
            prop_assert!(
                strengthens_on(&c, &d).is_none(),
                "filter rejected a real strengthening"
            );
        }
    }

    /// `plan_subsumption` deletes a clause only when some other live
    /// clause really subsumes it (naive O(n²) oracle over the original
    /// formula + planned strengthenings), and the surviving set is
    /// logically equivalent to the original (exhaustive models).
    #[test]
    fn prop_subsumption_never_removes_nonsubsumed(seed in any::<u64>()) {
        let mut rng = proptest::TestRng::deterministic(&format!("sub{seed}"));
        let nv = 2 + rng.below(6) as usize;
        let nc = 1 + rng.below(10) as usize;
        let original = random_formula(&mut rng, nv, nc);
        let mut planned: Vec<Option<Vec<Lit>>> = original.iter().cloned().map(Some).collect();
        let mut learnt = vec![false; planned.len()];
        let mut budget = u64::MAX;
        let actions = plan_subsumption(&mut planned, &mut learnt, nv, &mut budget);

        // replay the actions on an oracle copy, checking each one
        let mut state: Vec<Option<Vec<Lit>>> = original.iter().cloned().map(Some).collect();
        for act in &actions {
            match *act {
                SubsumeAction::Promote { .. } => {}
                SubsumeAction::Delete { target, by } => {
                    let t = state[target as usize].take().expect("deleting absent clause");
                    let b = state[by as usize].as_ref().expect("subsumer absent");
                    prop_assert!(
                        subsumes(b, &t),
                        "planned deletion of a non-subsumed clause: {b:?} vs {t:?}"
                    );
                }
                SubsumeAction::Strengthen { target, drop, by } => {
                    let b = state[by as usize].clone().expect("strengthener absent");
                    let t = state[target as usize].as_mut().expect("strengthening absent clause");
                    let pivot = strengthens_on(&b, t);
                    prop_assert_eq!(
                        pivot.map(|p| !p), Some(drop),
                        "planned strengthening is not self-subsuming resolution"
                    );
                    t.retain(|&l| l != drop);
                }
            }
        }
        // replay must land exactly on the planner's final state
        prop_assert_eq!(&state, &planned, "actions do not reproduce the planned state");
        // and the survivors must be logically equivalent to the input
        let survivors: Vec<Vec<Lit>> = planned.iter().flatten().cloned().collect();
        for m in all_models(nv) {
            prop_assert_eq!(
                formula_sat(&original, &m),
                formula_sat(&survivors, &m),
                "subsumption changed the formula on model {:?}", m
            );
        }
    }

    /// BVE + reconstruction: eliminating a variable and extending any
    /// model of the resolvent formula yields a model of the original.
    #[test]
    fn prop_bve_reconstruction_total(seed in any::<u64>()) {
        let mut rng = proptest::TestRng::deterministic(&format!("bve{seed}"));
        let nv = 3 + rng.below(5) as usize;
        let nc = 2 + rng.below(10) as usize;
        let formula = random_formula(&mut rng, nv, nc);
        let v = Var::from_index(rng.below(nv as u64) as usize);
        let pos: Vec<Vec<Lit>> = formula
            .iter()
            .filter(|c| c.contains(&Lit::pos(v)))
            .cloned()
            .collect();
        let neg: Vec<Vec<Lit>> = formula
            .iter()
            .filter(|c| c.contains(&Lit::neg(v)))
            .cloned()
            .collect();
        // unbounded limits: never rejected
        let resolvents = bve_resolvents(v, &pos, &neg, 1000, 1000).unwrap();
        // the post-elimination formula: untouched clauses + resolvents
        let mut rest: Vec<Vec<Lit>> = formula
            .iter()
            .filter(|c| !c.iter().any(|l| l.var() == v))
            .cloned()
            .collect();
        rest.extend(resolvents);
        let mut stack = ReconStack::new();
        let mut stored = pos.clone();
        stored.extend(neg.clone());
        stack.push(v, stored);
        prop_assert_eq!(stack.active_records(), 1);
        for m in all_models(nv) {
            if !formula_sat(&rest, &m) {
                continue;
            }
            let mut extended: Vec<Option<bool>> =
                m.iter().copied().map(Some).collect();
            extended[v.index()] = None; // v is eliminated: value unknown
            stack.extend_model(&mut extended);
            let full: Vec<bool> = extended.iter().map(|o| o.unwrap_or(false)).collect();
            prop_assert!(
                formula_sat(&formula, &full),
                "reconstructed model fails the pre-elimination formula"
            );
        }
        // deactivation empties the stack and returns the stored clauses
        let mut stack2 = stack.clone();
        let back = stack2.deactivate(v).expect("active record vanished");
        prop_assert_eq!(back.len(), pos.len() + neg.len());
        prop_assert_eq!(stack2.active_records(), 0);
        prop_assert!(stack2.deactivate(v).is_none());
    }

    /// Nested eliminations reconstruct in reverse order: eliminate two
    /// variables in sequence (the second elimination sees the first's
    /// resolvents) and extend a model of the final formula back over
    /// both.
    #[test]
    fn prop_bve_reconstruction_nested(seed in any::<u64>()) {
        let mut rng = proptest::TestRng::deterministic(&format!("bve2-{seed}"));
        let nv = 4 + rng.below(4) as usize;
        let nc = 3 + rng.below(10) as usize;
        let formula = random_formula(&mut rng, nv, nc);
        let v1 = Var::from_index(rng.below(nv as u64) as usize);
        let mut v2 = Var::from_index(rng.below(nv as u64) as usize);
        if v2 == v1 {
            v2 = Var::from_index((v1.index() + 1) % nv);
        }
        let mut stack = ReconStack::new();
        let mut current = formula.clone();
        for &v in &[v1, v2] {
            let pos: Vec<Vec<Lit>> =
                current.iter().filter(|c| c.contains(&Lit::pos(v))).cloned().collect();
            let neg: Vec<Vec<Lit>> =
                current.iter().filter(|c| c.contains(&Lit::neg(v))).cloned().collect();
            let resolvents = bve_resolvents(v, &pos, &neg, 1000, 1000).unwrap();
            current.retain(|c| !c.iter().any(|l| l.var() == v));
            current.extend(resolvents);
            let mut stored = pos;
            stored.extend(neg);
            stack.push(v, stored);
        }
        for m in all_models(nv) {
            if !formula_sat(&current, &m) {
                continue;
            }
            let mut extended: Vec<Option<bool>> = m.iter().copied().map(Some).collect();
            extended[v1.index()] = None;
            extended[v2.index()] = None;
            stack.extend_model(&mut extended);
            let full: Vec<bool> = extended.iter().map(|o| o.unwrap_or(false)).collect();
            prop_assert!(
                formula_sat(&formula, &full),
                "nested reconstruction fails the original formula"
            );
        }
    }

    /// `subsumes` / `strengthens_on` against literal set definitions.
    #[test]
    fn prop_subsume_strengthen_definitions(seed in any::<u64>()) {
        let mut rng = proptest::TestRng::deterministic(&format!("def{seed}"));
        let nv = 2 + rng.below(5) as usize;
        let c = random_clause(&mut rng, nv, 4);
        let d = random_clause(&mut rng, nv, 4);
        let naive_subsumes = c.iter().all(|l| d.contains(l));
        prop_assert_eq!(subsumes(&c, &d), naive_subsumes);
        if let Some(p) = strengthens_on(&c, &d) {
            prop_assert!(c.contains(&p));
            prop_assert!(d.contains(&!p));
            prop_assert!(c.iter().all(|&l| l == p || d.contains(&l)));
            prop_assert!(!naive_subsumes);
        }
    }
}
