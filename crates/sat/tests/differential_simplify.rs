//! Differential fuzzing of the simplification pipeline.
//!
//! 500 seeded instances — a mix of random 3-SAT near the phase
//! transition and small CEGIS-shaped cardinality/parity encodings like
//! the ones `fec-smt` emits — are solved three ways:
//!
//! 1. CDCL with the full simplifier on (aggressive cadence so
//!    *inprocessing*, not just preprocessing, is exercised),
//! 2. CDCL with simplification off,
//! 3. the reference DPLL oracle.
//!
//! All three verdicts must agree. Every SAT model coming out of the
//! simplified solver is reconstructed (eliminated variables re-valued
//! from the reconstruction stack) and validated against the *original*
//! clause set, and every UNSAT run's DRAT stream is replayed by the
//! independent `fec-drat` checker — which also proves that BVE
//! resolvents, strengthened clauses, probing units, and vivified
//! clauses are all RUP, i.e. the checker needs no RAT support.

use fec_drat::Checker;
use fec_sat::reference;
use fec_sat::{
    Budget, Lit, MemoryProofLogger, RestartPolicy, SimplifyConfig, SolveResult, Solver,
    SolverConfig, Var,
};

/// Deterministic xorshift64, same shape as the solver's internal rng.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() as usize) % n
    }
    fn flag(&mut self) -> bool {
        self.next() & 1 == 0
    }
}

/// Random 3-SAT at clause/variable ratio ≈ 4.2 (the phase transition,
/// where both verdicts occur and instances are hardest for their size).
fn random_3sat(rng: &mut Rng, nv: usize) -> Vec<Vec<Lit>> {
    let nc = (nv as f64 * 4.2).round() as usize;
    (0..nc)
        .map(|_| {
            (0..3)
                .map(|_| Lit::with_sign(Var::from_index(rng.below(nv)), rng.flag()))
                .collect()
        })
        .collect()
}

/// A small CEGIS-shaped instance: XOR chains (parity constraints like
/// eq. 2 of the paper's verify encoding) plus a pairwise at-most-k
/// cardinality bound over the chain outputs — the clause shapes
/// `fec-smt` feeds the solver, with the auxiliary-variable structure
/// BVE thrives on.
fn cegis_shaped(rng: &mut Rng, inputs: usize) -> (usize, Vec<Vec<Lit>>) {
    let mut nv = inputs;
    let mut fresh = || {
        let v = Var::from_index(nv);
        nv += 1;
        v
    };
    let mut clauses: Vec<Vec<Lit>> = Vec::new();
    let chains = 2 + rng.below(3);
    let mut outs: Vec<Lit> = Vec::new();
    for _ in 0..chains {
        // out = x_a ⊕ x_b via the usual 4-clause Tseitin encoding
        let a = Lit::with_sign(Var::from_index(rng.below(inputs)), rng.flag());
        let b = Lit::with_sign(Var::from_index(rng.below(inputs)), rng.flag());
        let o = Lit::pos(fresh());
        clauses.push(vec![!a, !b, !o]);
        clauses.push(vec![a, b, !o]);
        clauses.push(vec![!a, b, o]);
        clauses.push(vec![a, !b, o]);
        outs.push(o);
    }
    // pairwise at-most-1 over the chain outputs
    for i in 0..outs.len() {
        for j in i + 1..outs.len() {
            clauses.push(vec![!outs[i], !outs[j]]);
        }
    }
    // force some outputs on to make a fraction of the instances UNSAT
    for o in outs.iter().take(1 + rng.below(2)) {
        clauses.push(vec![*o]);
    }
    // a couple of random ternary clauses over everything for noise
    for _ in 0..rng.below(4) {
        clauses.push(
            (0..3)
                .map(|_| Lit::with_sign(Var::from_index(rng.below(nv)), rng.flag()))
                .collect(),
        );
    }
    (nv, clauses)
}

/// Simplification forced on with an aggressive inprocessing cadence:
/// tiny restart base + interval 1 means the pipeline re-runs at
/// essentially every restart, so inprocessing (not just the initial
/// preprocessing pass) is exercised even on these small instances.
fn simplifying_config(seed: u64) -> SolverConfig {
    SolverConfig {
        restart: RestartPolicy::Luby { base: 8 },
        seed,
        simplify: SimplifyConfig {
            inprocess_interval: 1,
            rounds: 2,
            ..SimplifyConfig::on()
        },
        ..SolverConfig::default()
    }
}

enum Mode {
    Plain,
    Assumptions(Vec<Lit>),
}

fn run_case(case: u64, num_vars: usize, clauses: &[Vec<Lit>], mode: &Mode) -> fec_sat::SolverStats {
    let assumptions: &[Lit] = match mode {
        Mode::Plain => &[],
        Mode::Assumptions(a) => a,
    };
    // reference verdict on the original formula (+ assumptions as units)
    let mut with_assumptions = clauses.to_vec();
    for &a in assumptions {
        with_assumptions.push(vec![a]);
    }
    let oracle = reference::solve(num_vars, &with_assumptions);

    // simplification off
    let mut plain = Solver::new();
    for _ in 0..num_vars {
        plain.new_var();
    }
    let mut ok = true;
    for c in clauses {
        ok = plain.add_clause(c);
        if !ok {
            break;
        }
    }
    let plain_verdict = if ok {
        plain.solve(assumptions)
    } else {
        SolveResult::Unsat
    };

    // simplification on, with proof logging
    let proof = MemoryProofLogger::new();
    let mut simp = Solver::with_config(simplifying_config(case));
    simp.set_proof_logger(Box::new(proof.clone()));
    for _ in 0..num_vars {
        simp.new_var();
    }
    let mut ok = true;
    for c in clauses {
        ok = simp.add_clause(c);
        if !ok {
            break;
        }
    }
    let simp_verdict = if ok {
        simp.solve_with_budget(assumptions, Budget::unlimited())
    } else {
        SolveResult::Unsat
    };

    assert_eq!(
        plain_verdict, simp_verdict,
        "case {case}: simplification flipped the verdict"
    );
    assert_eq!(
        oracle.is_some(),
        simp_verdict == SolveResult::Sat,
        "case {case}: simplified solver disagrees with reference DPLL"
    );

    match simp_verdict {
        SolveResult::Sat => {
            // the reconstructed model must satisfy the ORIGINAL clause
            // set — eliminated variables included
            let model: Vec<bool> = (0..num_vars)
                .map(|i| simp.value(Var::from_index(i)).unwrap_or(false))
                .collect();
            assert!(
                reference::check_model(&with_assumptions, &model),
                "case {case}: reconstructed model violates the original formula"
            );
            simp.check_invariants();
        }
        SolveResult::Unsat => {
            if assumptions.is_empty() {
                // a refutation must certify through the independent
                // checker: every simplifier-derived clause is RUP
                let steps = proof.take_steps();
                let mut checker = Checker::new();
                checker
                    .process_all(steps.iter())
                    .unwrap_or_else(|e| panic!("case {case}: proof rejected: {e}"));
                assert!(
                    checker.is_refuted(),
                    "case {case}: UNSAT verdict but the proof derives no refutation"
                );
            } else {
                // assumption-UNSAT emits no refutation; the failed
                // subset must consist of actual assumptions
                for l in simp.failed_assumptions() {
                    assert!(
                        assumptions.contains(l),
                        "case {case}: failed-assumption literal {l:?} was never assumed"
                    );
                }
            }
        }
        SolveResult::Unknown => panic!("case {case}: unlimited budget returned Unknown"),
    }
    simp.stats()
}

#[test]
fn differential_500_instances() {
    let mut rng = Rng::new(0xFEC5);
    let mut totals = fec_sat::SolverStats::default();
    for case in 0..500u64 {
        let (num_vars, clauses, mode) = match case % 5 {
            // random 3-SAT at the phase transition
            0 | 1 => {
                let nv = 5 + rng.below(8);
                (nv, random_3sat(&mut rng, nv), Mode::Plain)
            }
            // CEGIS-shaped cardinality/parity encodings
            2 | 3 => {
                let inputs = 4 + rng.below(4);
                let (nv, cs) = cegis_shaped(&mut rng, inputs);
                (nv, cs, Mode::Plain)
            }
            // 3-SAT under assumptions: frozen-variable handling on the
            // solve path (assumption vars must survive simplification)
            _ => {
                let nv = 5 + rng.below(8);
                let cs = random_3sat(&mut rng, nv);
                let a = Lit::with_sign(Var::from_index(rng.below(nv)), rng.flag());
                let b = Lit::with_sign(Var::from_index(rng.below(nv)), rng.flag());
                let assumptions = if a.var() == b.var() {
                    vec![a]
                } else {
                    vec![a, b]
                };
                (nv, cs, Mode::Assumptions(assumptions))
            }
        };
        totals.merge(&run_case(case, num_vars, &clauses, &mode));
    }
    // the harness must exercise the pipeline, not merely tolerate it:
    // across 500 instances every technique has to have fired
    assert!(totals.simplify_passes > 0, "no simplification pass ran");
    assert!(
        totals.eliminated_vars > 0,
        "BVE never eliminated a variable"
    );
    assert!(totals.subsumed_clauses > 0, "subsumption never fired");
    assert!(
        totals.strengthened_clauses > 0,
        "self-subsuming resolution never fired"
    );
    assert!(
        totals.failed_literals > 0,
        "probing never found a failed literal"
    );
    assert!(
        totals.vivified_clauses > 0,
        "vivification never shortened a clause"
    );
}

/// Incremental use across simplification: clauses added *after* a
/// simplified solve may re-introduce eliminated variables, and the
/// answers must stay consistent with a fresh solver on the union.
#[test]
fn incremental_after_simplification() {
    let mut rng = Rng::new(0xD1FF);
    for case in 0..60u64 {
        let nv = 6 + rng.below(6);
        let first = random_3sat(&mut rng, nv);
        let second = random_3sat(&mut rng, nv);

        let mut s = Solver::with_config(simplifying_config(case));
        for _ in 0..nv {
            s.new_var();
        }
        let mut ok = true;
        for c in &first {
            ok = s.add_clause(c);
            if !ok {
                break;
            }
        }
        let v1 = if ok { s.solve(&[]) } else { SolveResult::Unsat };
        assert_eq!(
            v1 == SolveResult::Sat,
            reference::solve(nv, &first).is_some(),
            "case {case}: first batch verdict wrong"
        );
        if v1 == SolveResult::Unsat {
            continue;
        }
        for c in &second {
            if !s.add_clause(c) {
                break;
            }
        }
        let v2 = s.solve(&[]);
        let mut all = first.clone();
        all.extend(second.iter().cloned());
        assert_eq!(
            v2 == SolveResult::Sat,
            reference::solve(nv, &all).is_some(),
            "case {case}: verdict wrong after incremental batch"
        );
        if v2 == SolveResult::Sat {
            let model: Vec<bool> = (0..nv)
                .map(|i| s.value(Var::from_index(i)).unwrap_or(false))
                .collect();
            assert!(
                reference::check_model(&all, &model),
                "case {case}: incremental model violates the combined formula"
            );
        }
        s.check_invariants();
    }
}

/// The on-demand [`Solver::preprocess`] entry must preserve
/// satisfiability and keep solving correct afterwards.
#[test]
fn explicit_preprocess_roundtrip() {
    let mut rng = Rng::new(0xBEEF);
    for case in 0..60u64 {
        let nv = 6 + rng.below(6);
        let clauses = random_3sat(&mut rng, nv);
        let oracle = reference::solve(nv, &clauses);

        let mut s = Solver::with_config(simplifying_config(case));
        for _ in 0..nv {
            s.new_var();
        }
        let mut ok = true;
        for c in &clauses {
            ok = s.add_clause(c);
            if !ok {
                break;
            }
        }
        if ok {
            ok = s.preprocess(&[]);
            s.check_invariants();
        }
        let verdict = if ok { s.solve(&[]) } else { SolveResult::Unsat };
        assert_eq!(
            verdict == SolveResult::Sat,
            oracle.is_some(),
            "case {case}: preprocess changed satisfiability"
        );
        if verdict == SolveResult::Sat {
            let model: Vec<bool> = (0..nv)
                .map(|i| s.value(Var::from_index(i)).unwrap_or(false))
                .collect();
            assert!(
                reference::check_model(&clauses, &model),
                "case {case}: model after explicit preprocess is invalid"
            );
        }
    }
}
