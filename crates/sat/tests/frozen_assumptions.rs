//! Regression tests for the frozen-variable contract: assumption
//! literals and externally-frozen activation variables must survive
//! simplification. A frozen-var leak would not crash — it would
//! silently mis-answer incremental (push/pop-style) queries — so these
//! tests are written to *fail* on a leak, not to tolerate it.

use fec_sat::{Lit, SimplifyConfig, SolveResult, Solver, SolverConfig, Var};

fn aggressive() -> SolverConfig {
    SolverConfig {
        restart: fec_sat::RestartPolicy::Luby { base: 8 },
        simplify: SimplifyConfig {
            inprocess_interval: 1,
            // generous budgets: on these tiny instances the simplifier
            // would eliminate everything it is allowed to
            bve_occ_limit: 1000,
            bve_clause_limit: 1000,
            ..SimplifyConfig::on()
        },
        ..SolverConfig::default()
    }
}

/// Activation-literal pattern (what `fec-smt`'s push/pop layer does):
/// guard variables tag clauses, assumptions enable/disable them. The
/// guard variable occurs in one phase only — prime pure-literal /
/// BVE fodder — so without freezing, preprocessing would eliminate it
/// and later assumption-driven queries would be answered on a formula
/// that no longer contains the guard.
#[test]
fn frozen_activation_literals_survive_preprocessing() {
    let mut s = Solver::with_config(aggressive());
    let g = s.new_var(); // guard
    let x = s.new_var();
    let y = s.new_var();
    s.freeze_var(g);
    // guarded constraints: g → (x ∧ ¬y)
    s.add_clause(&[Lit::neg(g), Lit::pos(x)]);
    s.add_clause(&[Lit::neg(g), Lit::neg(y)]);
    // unguarded noise the simplifier may chew on freely
    s.add_clause(&[Lit::pos(x), Lit::pos(y)]);

    assert!(s.preprocess(&[]), "preprocessing refuted a SAT instance");
    assert!(
        !s.is_eliminated(g),
        "frozen guard variable was eliminated by preprocessing"
    );

    // the guarded query must still see the guarded clauses
    assert_eq!(s.solve(&[Lit::pos(g), Lit::pos(y)]), SolveResult::Unsat);
    let failed = s.failed_assumptions().to_vec();
    assert!(
        !failed.is_empty(),
        "assumption-UNSAT must name the failing assumptions"
    );
    // disabling the guard re-enables y
    assert_eq!(s.solve(&[Lit::neg(g), Lit::pos(y)]), SolveResult::Sat);
    assert_eq!(s.value(y), Some(true));
}

/// Assumption variables of the current solve call are frozen
/// automatically — even without an explicit `freeze_var`.
#[test]
fn solve_assumptions_are_frozen_automatically() {
    let mut s = Solver::with_config(aggressive());
    let a = s.new_var();
    let b = s.new_var();
    let c = s.new_var();
    // a occurs only positively: pure-literal elimination bait
    s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
    s.add_clause(&[Lit::pos(a), Lit::neg(c)]);
    s.add_clause(&[Lit::pos(b), Lit::pos(c)]);

    // solving under ¬a forces b and breaks c's escape: still SAT
    assert_eq!(s.solve(&[Lit::neg(a)]), SolveResult::Sat);
    assert_eq!(
        s.value(a),
        Some(false),
        "assumption not honoured in the model"
    );
    assert_eq!(s.value(b), Some(true));

    // and the solver remains usable for the flipped assumption
    assert_eq!(s.solve(&[Lit::pos(a)]), SolveResult::Sat);
    assert_eq!(
        s.value(a),
        Some(true),
        "assumption not honoured after re-solve"
    );
}

/// An eliminated variable used by a *later* solve call's assumptions
/// must be restored transparently, and the answers must match a
/// never-simplified solver.
#[test]
fn eliminated_variable_restored_by_assumption() {
    let mut s = Solver::with_config(aggressive());
    let vs: Vec<Var> = (0..6).map(|_| s.new_var()).collect();
    // chain x0 → x1 → ... → x5; interior variables are BVE targets
    for w in vs.windows(2) {
        s.add_clause(&[Lit::neg(w[0]), Lit::pos(w[1])]);
    }
    assert!(s.preprocess(&[]));
    assert!(
        (0..6).any(|i| s.is_eliminated(vs[i])),
        "aggressive BVE should eliminate part of an implication chain"
    );
    // pick an eliminated interior variable and assume it: the chain
    // tail must still be implied, exactly as without simplification
    let v = (0..6).map(|i| vs[i]).find(|&v| s.is_eliminated(v)).unwrap();
    assert_eq!(s.solve(&[Lit::pos(v)]), SolveResult::Sat);
    assert!(!s.is_eliminated(v), "assumed variable still eliminated");
    assert_eq!(
        s.value(vs[5]),
        Some(true),
        "restored chain lost the implication to the tail"
    );
    s.check_invariants();
}

/// Freezing after elimination restores the variable immediately.
#[test]
fn freeze_restores_eliminated_variable() {
    let mut s = Solver::with_config(aggressive());
    let a = s.new_var();
    let b = s.new_var();
    let c = s.new_var();
    s.add_clause(&[Lit::neg(a), Lit::pos(b)]);
    s.add_clause(&[Lit::neg(b), Lit::pos(c)]);
    assert!(s.preprocess(&[]));
    if s.is_eliminated(b) {
        s.freeze_var(b);
        assert!(!s.is_eliminated(b), "freeze_var must restore first");
        assert!(s.is_frozen(b));
    }
    // either way the semantics are intact
    assert_eq!(s.solve(&[Lit::pos(a)]), SolveResult::Sat);
    assert_eq!(s.value(c), Some(true));
    // and a later pass must not eliminate the now-frozen variable
    s.add_clause(&[Lit::pos(a), Lit::pos(b), Lit::pos(c)]);
    assert!(s.preprocess(&[]));
    assert!(!s.is_eliminated(b));
    s.check_invariants();
}
