//! Source emission: per-generator C and Rust encode/check functions.
//!
//! The emitted code has the same shape as the paper's §4.4 generated C:
//! straight-line `&`/`^`/shift expressions, one statement per check
//! bit, with only the *set* coefficient bits appearing — so the
//! instruction count tracks `len_1` directly.

use fec_hamming::Generator;
use std::fmt::Write;

/// Emits a self-contained C translation unit with
/// `uint64_t encode_checks(uint64_t d)` and
/// `uint64_t syndrome(uint64_t d, uint64_t checks)` for `g`, plus a
/// `main` that sweeps 32-bit words with the paper's stride-21 workload
/// when `with_main` is set.
///
/// # Panics
/// Panics if `g.data_len() > 64` or `g.check_len() > 64`.
pub fn emit_c(g: &Generator, with_main: bool) -> String {
    emit_c_impl(g, with_main.then_some(21))
}

/// Shared emission core; `main_stride` selects whether a `main` sweep
/// is emitted and, if so, with which stride — a real parameter rather
/// than post-hoc text substitution, so the emitted program is identical
/// in shape for every stride.
fn emit_c_impl(g: &Generator, main_stride: Option<u64>) -> String {
    assert!(
        g.data_len() <= 64 && g.check_len() <= 64,
        "emit_c supports ≤ 64 bits"
    );
    let with_main = main_stride.is_some();
    let mut out = String::new();
    out.push_str("#include <stdint.h>\n");
    if with_main {
        out.push_str("#include <stdio.h>\n");
    }
    out.push_str("\n/* generated encoder: ");
    let _ = writeln!(
        out,
        "({}, {}) code, {} coefficient ones */",
        g.codeword_len(),
        g.data_len(),
        g.coefficient_ones()
    );
    out.push_str("uint64_t encode_checks(uint64_t d) {\n    uint64_t c = 0, b;\n");
    for j in 0..g.check_len() {
        let terms: Vec<String> = (0..g.data_len())
            .filter(|&y| g.coefficients().get(y, j))
            .map(|y| format!("(d >> {y})"))
            .collect();
        if terms.is_empty() {
            let _ = writeln!(out, "    b = 0;");
        } else {
            let _ = writeln!(out, "    b = {};", terms.join(" ^ "));
        }
        let _ = writeln!(out, "    c |= (b & 1) << {j};");
    }
    out.push_str("    return c;\n}\n\n");
    out.push_str(
        "uint64_t syndrome(uint64_t d, uint64_t checks) {\n    \
         return encode_checks(d) ^ checks;\n}\n",
    );
    if let Some(stride) = main_stride {
        let _ = write!(
            out,
            "\nint main(void) {{\n    \
             uint64_t acc = 0;\n    \
             /* the paper's workload: all 32-bit words in steps of {stride} */\n    \
             for (uint64_t d = 0; d <= 0xFFFFFFFFull; d += {stride}) {{\n        \
             uint64_t c = encode_checks(d);\n        \
             acc ^= syndrome(d, c);\n        \
             acc += c;\n    }}\n    \
             printf(\"%llu\\n\", (unsigned long long)acc);\n    \
             return 0;\n}}\n",
        );
    }
    out
}

/// Like [`emit_c`] with a main, but with a configurable sweep stride
/// (the paper uses 21; larger strides scale the workload down).
pub fn emit_c_bench(g: &Generator, stride: u64) -> String {
    emit_c_impl(g, Some(stride))
}

/// Emits a Rust function pair with the same structure as [`emit_c`].
pub fn emit_rust(g: &Generator) -> String {
    assert!(
        g.data_len() <= 64 && g.check_len() <= 64,
        "emit_rust supports ≤ 64 bits"
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "/// Generated encoder: ({}, {}) code, {} coefficient ones.",
        g.codeword_len(),
        g.data_len(),
        g.coefficient_ones()
    );
    out.push_str("pub fn encode_checks(d: u64) -> u64 {\n    let mut c = 0u64;\n");
    for j in 0..g.check_len() {
        let terms: Vec<String> = (0..g.data_len())
            .filter(|&y| g.coefficients().get(y, j))
            .map(|y| format!("(d >> {y})"))
            .collect();
        let expr = if terms.is_empty() {
            "0".to_string()
        } else {
            terms.join(" ^ ")
        };
        let _ = writeln!(out, "    c |= (({expr}) & 1) << {j};");
    }
    out.push_str("    c\n}\n\n");
    out.push_str(
        "pub fn syndrome(d: u64, checks: u64) -> u64 {\n    encode_checks(d) ^ checks\n}\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fec_hamming::standards;

    #[test]
    fn c_emission_contains_only_sparse_terms() {
        let g = standards::hamming_7_4(); // 9 coefficient ones
        let src = emit_c(&g, false);
        // one shift term per set coefficient bit
        assert_eq!(src.matches("(d >> ").count(), 9);
        assert!(src.contains("uint64_t encode_checks(uint64_t d)"));
        assert!(src.contains("uint64_t syndrome"));
        assert!(!src.contains("main"), "no main unless requested");
    }

    #[test]
    fn c_emission_with_main_has_stride_21_sweep() {
        let g = standards::hamming_7_4();
        let src = emit_c(&g, true);
        assert!(src.contains("d += 21"));
        assert!(src.contains("int main(void)"));
    }

    #[test]
    fn bench_emission_threads_stride_as_parameter() {
        let g = standards::hamming_7_4();
        // the stride appears in the loop increment and the comment, and
        // the encoder body is byte-identical across strides
        let s21 = emit_c_bench(&g, 21);
        let s997 = emit_c_bench(&g, 997);
        assert!(s21.contains("d += 21"));
        assert!(s997.contains("d += 997"));
        assert!(s997.contains("steps of 997"));
        assert!(!s997.contains("21"), "no stale default stride text");
        let body = |s: &str| s[..s.find("int main").unwrap()].to_string();
        assert_eq!(body(&s21), body(&s997));
        assert_eq!(emit_c_bench(&g, 21), emit_c(&g, true));
    }

    #[test]
    fn rust_emission_term_count_tracks_len1() {
        for (gen, ones) in [
            (standards::hamming_7_4(), 9),
            (standards::parity_code(16), 16),
            (standards::hamming_extended_8_4(), 12),
        ] {
            let src = emit_rust(&gen);
            assert_eq!(src.matches("(d >> ").count(), ones, "{gen:?}");
        }
    }

    // NOTE: the former regex-based `emitted_rust_compiles_and_matches_kernel`
    // and the system-`cc` compile test moved to `crates/circuit`
    // (`tests/emitted_sources.rs`), where the emitted text is checked by
    // the fec-circ parser + symbolic GF(2) validator instead of ad-hoc
    // string surgery, and the cc test also covers minimized kernels.
}
