//! Source emission: per-generator C and Rust encode/check functions.
//!
//! The emitted code has the same shape as the paper's §4.4 generated C:
//! straight-line `&`/`^`/shift expressions, one statement per check
//! bit, with only the *set* coefficient bits appearing — so the
//! instruction count tracks `len_1` directly.

use fec_hamming::Generator;
use std::fmt::Write;

/// Emits a self-contained C translation unit with
/// `uint64_t encode_checks(uint64_t d)` and
/// `uint64_t syndrome(uint64_t d, uint64_t checks)` for `g`, plus a
/// `main` that sweeps 32-bit words with the paper's stride-21 workload
/// when `with_main` is set.
///
/// # Panics
/// Panics if `g.data_len() > 64` or `g.check_len() > 64`.
pub fn emit_c(g: &Generator, with_main: bool) -> String {
    assert!(
        g.data_len() <= 64 && g.check_len() <= 64,
        "emit_c supports ≤ 64 bits"
    );
    let mut out = String::new();
    out.push_str("#include <stdint.h>\n");
    if with_main {
        out.push_str("#include <stdio.h>\n");
    }
    out.push_str("\n/* generated encoder: ");
    let _ = writeln!(
        out,
        "({}, {}) code, {} coefficient ones */",
        g.codeword_len(),
        g.data_len(),
        g.coefficient_ones()
    );
    out.push_str("uint64_t encode_checks(uint64_t d) {\n    uint64_t c = 0, b;\n");
    for j in 0..g.check_len() {
        let terms: Vec<String> = (0..g.data_len())
            .filter(|&y| g.coefficients().get(y, j))
            .map(|y| format!("(d >> {y})"))
            .collect();
        if terms.is_empty() {
            let _ = writeln!(out, "    b = 0;");
        } else {
            let _ = writeln!(out, "    b = {};", terms.join(" ^ "));
        }
        let _ = writeln!(out, "    c |= (b & 1) << {j};");
    }
    out.push_str("    return c;\n}\n\n");
    out.push_str(
        "uint64_t syndrome(uint64_t d, uint64_t checks) {\n    \
         return encode_checks(d) ^ checks;\n}\n",
    );
    if with_main {
        out.push_str(
            "\nint main(void) {\n    \
             uint64_t acc = 0;\n    \
             /* the paper's workload: all 32-bit words in steps of 21 */\n    \
             for (uint64_t d = 0; d <= 0xFFFFFFFFull; d += 21) {\n        \
             uint64_t c = encode_checks(d);\n        \
             acc ^= syndrome(d, c);\n        \
             acc += c;\n    }\n    \
             printf(\"%llu\\n\", (unsigned long long)acc);\n    \
             return 0;\n}\n",
        );
    }
    out
}

/// Like [`emit_c`] with a main, but with a configurable sweep stride
/// (the paper uses 21; larger strides scale the workload down).
pub fn emit_c_bench(g: &Generator, stride: u64) -> String {
    let base = emit_c(g, true);
    base.replace("d += 21", &format!("d += {stride}"))
}

/// Emits a Rust function pair with the same structure as [`emit_c`].
pub fn emit_rust(g: &Generator) -> String {
    assert!(
        g.data_len() <= 64 && g.check_len() <= 64,
        "emit_rust supports ≤ 64 bits"
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "/// Generated encoder: ({}, {}) code, {} coefficient ones.",
        g.codeword_len(),
        g.data_len(),
        g.coefficient_ones()
    );
    out.push_str("pub fn encode_checks(d: u64) -> u64 {\n    let mut c = 0u64;\n");
    for j in 0..g.check_len() {
        let terms: Vec<String> = (0..g.data_len())
            .filter(|&y| g.coefficients().get(y, j))
            .map(|y| format!("(d >> {y})"))
            .collect();
        let expr = if terms.is_empty() {
            "0".to_string()
        } else {
            terms.join(" ^ ")
        };
        let _ = writeln!(out, "    c |= (({expr}) & 1) << {j};");
    }
    out.push_str("    c\n}\n\n");
    out.push_str(
        "pub fn syndrome(d: u64, checks: u64) -> u64 {\n    encode_checks(d) ^ checks\n}\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fec_hamming::standards;

    #[test]
    fn c_emission_contains_only_sparse_terms() {
        let g = standards::hamming_7_4(); // 9 coefficient ones
        let src = emit_c(&g, false);
        // one shift term per set coefficient bit
        assert_eq!(src.matches("(d >> ").count(), 9);
        assert!(src.contains("uint64_t encode_checks(uint64_t d)"));
        assert!(src.contains("uint64_t syndrome"));
        assert!(!src.contains("main"), "no main unless requested");
    }

    #[test]
    fn c_emission_with_main_has_stride_21_sweep() {
        let g = standards::hamming_7_4();
        let src = emit_c(&g, true);
        assert!(src.contains("d += 21"));
        assert!(src.contains("int main(void)"));
    }

    #[test]
    fn rust_emission_term_count_tracks_len1() {
        for (gen, ones) in [
            (standards::hamming_7_4(), 9),
            (standards::parity_code(16), 16),
            (standards::hamming_extended_8_4(), 12),
        ] {
            let src = emit_rust(&gen);
            assert_eq!(src.matches("(d >> ").count(), ones, "{gen:?}");
        }
    }

    #[test]
    fn emitted_rust_compiles_and_matches_kernel() {
        // interpret the emitted Rust by re-deriving the masks from the
        // source text and comparing against the MaskKernel — a cheap
        // "does the emitted code compute the right thing" check that
        // needs no rustc invocation
        let g = standards::shortened_hamming(12, 5).unwrap();
        let src = emit_rust(&g);
        let kernel = crate::MaskKernel::new(&g);
        // parse each `c |= ((…) & 1) << j;` line back into a mask
        let mut masks = vec![0u64; g.check_len()];
        for line in src.lines() {
            let Some(rest) = line.trim().strip_prefix("c |= ((") else {
                continue;
            };
            let (expr, tail) = rest.split_once(") & 1) << ").unwrap();
            let j: usize = tail.trim_end_matches(';').parse().unwrap();
            if expr == "0" {
                continue;
            }
            for term in expr.split(" ^ ") {
                let y: usize = term
                    .trim_start_matches("(d >> ")
                    .trim_end_matches(')')
                    .parse()
                    .unwrap();
                masks[j] |= 1 << y;
            }
        }
        for d in [0u64, 1, 0xABC, 0xFFF, 0x555] {
            let mut expect = 0u64;
            for (j, &m) in masks.iter().enumerate() {
                expect |= u64::from((d & m).count_ones() % 2 == 1) << j;
            }
            assert_eq!(kernel.encode_checks(d), expect, "data {d:x}");
        }
    }

    #[test]
    fn emitted_c_compiles_with_system_cc_if_available() {
        // full end-to-end check when a C compiler is present; skipped
        // silently otherwise (CI containers may not ship one)
        let cc = ["cc", "gcc", "clang"]
            .iter()
            .find(|c| {
                std::process::Command::new(c)
                    .arg("--version")
                    .output()
                    .is_ok_and(|o| o.status.success())
            })
            .copied();
        let Some(cc) = cc else {
            eprintln!("no C compiler found; skipping");
            return;
        };
        let g = standards::hamming_7_4();
        let dir = std::env::temp_dir().join("fec_codegen_test");
        std::fs::create_dir_all(&dir).unwrap();
        let c_path = dir.join("enc.c");
        let bin_path = dir.join("enc_bin");
        // tiny main: print checks for data word 3 (0b0011 → 100 = 1)
        let mut src = emit_c(&g, false);
        src.push_str(
            "\n#include <stdio.h>\nint main(void){printf(\"%llu\\n\",\
             (unsigned long long)encode_checks(3));return 0;}\n",
        );
        std::fs::write(&c_path, src).unwrap();
        let ok = std::process::Command::new(cc)
            .args(["-O2", "-o"])
            .arg(&bin_path)
            .arg(&c_path)
            .status()
            .unwrap()
            .success();
        assert!(ok, "emitted C failed to compile");
        let out = std::process::Command::new(&bin_path).output().unwrap();
        let value: u64 = String::from_utf8_lossy(&out.stdout).trim().parse().unwrap();
        // Fig. 2: data 0011 (LSB-first bits 0,1 set) ⇒ checks …
        let expect = crate::MaskKernel::new(&g).encode_checks(3);
        assert_eq!(value, expect);
    }
}
