//! Runtime-specialized encode/check kernels for data words ≤ 64 bits.

use fec_gf2::parity64;
use fec_hamming::Generator;

/// Mask-specialized kernel: one pre-computed data-bit mask per check
/// column; encoding a word is `check_len` AND+POPCNT operations. The
/// analogue of the paper's GCC `-O3` build of the emitted C.
#[derive(Clone, Debug)]
pub struct MaskKernel {
    masks: Vec<u64>,
    data_len: usize,
}

impl MaskKernel {
    /// Builds the kernel for a generator with `data_len ≤ 64`.
    ///
    /// # Panics
    /// Panics if `g.data_len() > 64` or `g.check_len() > 64`.
    pub fn new(g: &Generator) -> MaskKernel {
        assert!(g.data_len() <= 64, "mask kernel supports k ≤ 64");
        assert!(g.check_len() <= 64, "mask kernel supports c ≤ 64");
        let masks = (0..g.check_len())
            .map(|j| {
                let mut m = 0u64;
                for y in 0..g.data_len() {
                    if g.coefficients().get(y, j) {
                        m |= 1 << y;
                    }
                }
                m
            })
            .collect();
        MaskKernel {
            masks,
            data_len: g.data_len(),
        }
    }

    /// Number of data bits.
    pub fn data_len(&self) -> usize {
        self.data_len
    }

    /// Number of check bits.
    pub fn check_len(&self) -> usize {
        self.masks.len()
    }

    /// The per-check-column data-bit masks (mask `j` selects the data
    /// bits XORed into check bit `j`) — the kernel's entire linear
    /// structure, exposed so external validators (fec-circ) can prove
    /// it equivalent to the generator matrix.
    pub fn masks(&self) -> &[u64] {
        &self.masks
    }

    /// Computes the check bits for a data word (bit `i` of the result
    /// is check bit `i`).
    #[inline]
    pub fn encode_checks(&self, data: u64) -> u64 {
        debug_assert_eq!(
            data >> self.data_len.min(63) >> u32::from(self.data_len == 64),
            0
        );
        let mut out = 0u64;
        for (j, &m) in self.masks.iter().enumerate() {
            out |= (u64::from(parity64(data & m))) << j;
        }
        out
    }

    /// Checks a received `(data, checks)` pair; returns the syndrome
    /// (zero = valid).
    #[inline]
    pub fn syndrome(&self, data: u64, checks: u64) -> u64 {
        self.encode_checks(data) ^ checks
    }

    /// `true` when the received pair is a valid codeword.
    #[inline]
    pub fn is_valid(&self, data: u64, checks: u64) -> bool {
        self.syndrome(data, checks) == 0
    }
}

/// Sparse kernel: the in-process analog of the paper's emitted C —
/// per check bit, only the *set* coefficient positions are evaluated
/// (one shift+XOR each), so the cost is proportional to `len_1`.
#[derive(Clone, Debug)]
pub struct SparseKernel {
    /// For each check column, the data-bit indices with a set
    /// coefficient.
    terms: Vec<Vec<u8>>,
    data_len: usize,
}

impl SparseKernel {
    /// Builds the kernel for a generator with `data_len ≤ 64`.
    pub fn new(g: &Generator) -> SparseKernel {
        assert!(g.data_len() <= 64, "sparse kernel supports k ≤ 64");
        assert!(g.check_len() <= 64, "sparse kernel supports c ≤ 64");
        let terms = (0..g.check_len())
            .map(|j| {
                (0..g.data_len())
                    .filter(|&y| g.coefficients().get(y, j))
                    .map(|y| y as u8)
                    .collect()
            })
            .collect();
        SparseKernel {
            terms,
            data_len: g.data_len(),
        }
    }

    /// Number of data bits.
    pub fn data_len(&self) -> usize {
        self.data_len
    }

    /// Number of check bits.
    pub fn check_len(&self) -> usize {
        self.terms.len()
    }

    /// Total number of shift+XOR terms (= `len_1`).
    pub fn term_count(&self) -> usize {
        self.terms.iter().map(Vec::len).sum()
    }

    /// The per-check-column term lists (data-bit indices XORed into
    /// each check bit) — exposed for external validation (fec-circ).
    pub fn terms(&self) -> &[Vec<u8>] {
        &self.terms
    }

    /// Computes the check bits term by term, exactly like the emitted C.
    #[inline]
    pub fn encode_checks(&self, data: u64) -> u64 {
        let mut out = 0u64;
        for (j, cols) in self.terms.iter().enumerate() {
            let mut b = 0u64;
            for &y in cols {
                b ^= data >> y;
            }
            out |= (b & 1) << j;
        }
        out
    }

    /// Syndrome of a received pair.
    #[inline]
    pub fn syndrome(&self, data: u64, checks: u64) -> u64 {
        self.encode_checks(data) ^ checks
    }
}

/// Unspecialized kernel: walks every matrix cell with single-bit reads,
/// the way a naive (`-O0`-like) generated program would.
#[derive(Clone, Debug)]
pub struct NaiveKernel {
    g: Generator,
}

impl NaiveKernel {
    /// Wraps a generator with `data_len ≤ 64`.
    pub fn new(g: &Generator) -> NaiveKernel {
        assert!(g.data_len() <= 64, "naive kernel supports k ≤ 64");
        assert!(g.check_len() <= 64, "naive kernel supports c ≤ 64");
        NaiveKernel { g: g.clone() }
    }

    /// The wrapped generator — exposed for external validation
    /// (fec-circ rebuilds the kernel's circuit from it).
    pub fn generator(&self) -> &Generator {
        &self.g
    }

    /// Computes the check bits bit by bit.
    #[inline]
    pub fn encode_checks(&self, data: u64) -> u64 {
        let mut out = 0u64;
        for j in 0..self.g.check_len() {
            let mut bit = 0u64;
            for y in 0..self.g.data_len() {
                // the paper's generated C: `bit ^= (d >> y & 1) & p;`
                bit ^= (data >> y & 1) & u64::from(self.g.coefficients().get(y, j));
            }
            out |= bit << j;
        }
        out
    }

    /// Syndrome of a received pair.
    #[inline]
    pub fn syndrome(&self, data: u64, checks: u64) -> u64 {
        self.encode_checks(data) ^ checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fec_gf2::BitVec;
    use fec_hamming::standards;

    #[test]
    fn mask_kernel_matches_matrix_encode() {
        let g = standards::hamming_7_4();
        let k = MaskKernel::new(&g);
        for d in 0u64..16 {
            let data = BitVec::from_u128(d as u128, 4);
            let word = g.encode(&data);
            let expect = word.slice(4..7).to_u128() as u64;
            assert_eq!(k.encode_checks(d), expect, "data {d:04b}");
        }
    }

    #[test]
    fn all_kernels_agree() {
        let g = standards::shortened_hamming(32, 6).unwrap();
        let mask = MaskKernel::new(&g);
        let naive = NaiveKernel::new(&g);
        let sparse = SparseKernel::new(&g);
        assert_eq!(sparse.term_count(), g.coefficient_ones());
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let d = x >> 32; // 32-bit data
            assert_eq!(mask.encode_checks(d), naive.encode_checks(d));
            assert_eq!(mask.encode_checks(d), sparse.encode_checks(d));
            assert_eq!(sparse.syndrome(d, sparse.encode_checks(d)), 0);
        }
    }

    #[test]
    fn valid_codewords_have_zero_syndrome() {
        let g = standards::shortened_hamming(16, 5).unwrap();
        let k = MaskKernel::new(&g);
        for d in [0u64, 1, 0xFFFF, 0xA5A5, 0x1234] {
            let checks = k.encode_checks(d);
            assert!(k.is_valid(d, checks));
            // flipping any check bit breaks validity
            for j in 0..k.check_len() {
                assert!(!k.is_valid(d, checks ^ (1 << j)));
            }
            // flipping any data bit breaks validity (md ≥ 2 codes)
            for i in 0..16 {
                assert!(!k.is_valid(d ^ (1 << i), checks));
            }
        }
    }

    #[test]
    fn syndrome_locates_single_data_bit_errors() {
        let g = standards::hamming_7_4();
        let k = MaskKernel::new(&g);
        let d = 0b0011u64;
        let checks = k.encode_checks(d);
        // flip data bit 2: syndrome must equal row 2 of P (= 111)
        let s = k.syndrome(d ^ 0b100, checks);
        assert_eq!(s, 0b111);
    }

    #[test]
    fn full_width_kernels() {
        let g = standards::shortened_hamming(64, 7).unwrap();
        let k = MaskKernel::new(&g);
        let n = NaiveKernel::new(&g);
        let d = u64::MAX;
        assert_eq!(k.encode_checks(d), n.encode_checks(d));
        assert_eq!(k.syndrome(d, k.encode_checks(d)), 0);
    }

    #[test]
    #[should_panic(expected = "k ≤ 64")]
    fn mask_kernel_rejects_wide_data() {
        MaskKernel::new(&standards::ieee_8023df_128_120());
    }
}
