//! Specialized encoder/checker generation (§4.4).
//!
//! For a *fixed* generator, encoding reduces to one AND+parity per
//! check bit; the number of AND'd bits is exactly the column weight of
//! the coefficient matrix. The paper emits per-generator C programs
//! and shows that minimizing `len_1` (total set coefficient bits)
//! speeds up encode/check. This crate provides:
//!
//! - [`MaskKernel`]: a runtime-specialized encoder/checker using
//!   per-column bitmasks and hardware popcount (the analogue of the
//!   paper's `-O3` build);
//! - [`SparseKernel`]: term-by-term evaluation of only the set
//!   coefficient bits — the in-process analogue of the emitted C,
//!   whose cost scales with `len_1`;
//! - [`NaiveKernel`]: a bit-by-bit loop over every matrix cell with no
//!   specialization at all;
//! - [`emit_c`] / [`emit_rust`]: source emission mirroring the paper's
//!   generated C (`&` + `^` only), for inspection or out-of-tree
//!   compilation.
//!
//! Every form this crate produces is statically validated against the
//! generator matrix by the `fec-circ` crate (XOR-circuit IR + symbolic
//! GF(2) translation validation); the kernels expose their internal
//! linear structure ([`MaskKernel::masks`], [`SparseKernel::terms`],
//! [`NaiveKernel::generator`]) for exactly that purpose.

#![forbid(unsafe_code)]

mod emit;
mod kernel;

pub use emit::{emit_c, emit_c_bench, emit_rust};
pub use kernel::{MaskKernel, NaiveKernel, SparseKernel};
