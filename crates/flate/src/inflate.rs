//! The DEFLATE decompressor (RFC 1951), used to round-trip-test every
//! compressor path and to decode gzip members.

use crate::bitio::BitReader;
use crate::deflate::{fixed_dist_lengths, fixed_lit_lengths, CLC_ORDER, DIST_TABLE, LENGTH_TABLE};
use crate::huffman::Decoder;
use std::fmt;

/// Decompression failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum InflateError {
    UnexpectedEof,
    BadBlockType,
    BadStoredLength,
    BadHuffmanTable,
    BadSymbol,
    BadDistance,
}

impl fmt::Display for InflateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            InflateError::UnexpectedEof => "unexpected end of input",
            InflateError::BadBlockType => "reserved block type",
            InflateError::BadStoredLength => "stored block length check failed",
            InflateError::BadHuffmanTable => "malformed Huffman table",
            InflateError::BadSymbol => "invalid symbol",
            InflateError::BadDistance => "distance exceeds output",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for InflateError {}

/// Decompresses a raw DEFLATE stream.
pub fn inflate(data: &[u8]) -> Result<Vec<u8>, InflateError> {
    let mut r = BitReader::new(data);
    let mut out = Vec::new();
    loop {
        let bfinal = r.read_bit().ok_or(InflateError::UnexpectedEof)?;
        let btype = r.read_bits(2).ok_or(InflateError::UnexpectedEof)?;
        match btype {
            0b00 => inflate_stored(&mut r, &mut out)?,
            0b01 => {
                let lit = Decoder::new(&fixed_lit_lengths()).expect("fixed table");
                let dist = Decoder::new(&fixed_dist_lengths()).expect("fixed table");
                inflate_block(&mut r, &lit, &dist, &mut out)?;
            }
            0b10 => {
                let (lit, dist) = read_dynamic_tables(&mut r)?;
                inflate_block(&mut r, &lit, &dist, &mut out)?;
            }
            _ => return Err(InflateError::BadBlockType),
        }
        if bfinal == 1 {
            return Ok(out);
        }
    }
}

fn inflate_stored(r: &mut BitReader<'_>, out: &mut Vec<u8>) -> Result<(), InflateError> {
    r.align_byte();
    let len = r.read_bits(16).ok_or(InflateError::UnexpectedEof)? as u16;
    let nlen = r.read_bits(16).ok_or(InflateError::UnexpectedEof)? as u16;
    if len != !nlen {
        return Err(InflateError::BadStoredLength);
    }
    for _ in 0..len {
        out.push(r.read_byte().ok_or(InflateError::UnexpectedEof)?);
    }
    Ok(())
}

fn read_dynamic_tables(r: &mut BitReader<'_>) -> Result<(Decoder, Decoder), InflateError> {
    let hlit = r.read_bits(5).ok_or(InflateError::UnexpectedEof)? as usize + 257;
    let hdist = r.read_bits(5).ok_or(InflateError::UnexpectedEof)? as usize + 1;
    let hclen = r.read_bits(4).ok_or(InflateError::UnexpectedEof)? as usize + 4;
    let mut clc_lens = vec![0u32; 19];
    for &s in CLC_ORDER.iter().take(hclen) {
        clc_lens[s] = r.read_bits(3).ok_or(InflateError::UnexpectedEof)?;
    }
    let clc = Decoder::new(&clc_lens).ok_or(InflateError::BadHuffmanTable)?;
    let mut lens = Vec::with_capacity(hlit + hdist);
    while lens.len() < hlit + hdist {
        let sym = clc.decode(r).ok_or(InflateError::UnexpectedEof)?;
        match sym {
            0..=15 => lens.push(sym),
            16 => {
                let &prev = lens.last().ok_or(InflateError::BadSymbol)?;
                let n = 3 + r.read_bits(2).ok_or(InflateError::UnexpectedEof)?;
                lens.resize(lens.len() + n as usize, prev);
            }
            17 => {
                let n = 3 + r.read_bits(3).ok_or(InflateError::UnexpectedEof)?;
                lens.resize(lens.len() + n as usize, 0);
            }
            18 => {
                let n = 11 + r.read_bits(7).ok_or(InflateError::UnexpectedEof)?;
                lens.resize(lens.len() + n as usize, 0);
            }
            _ => return Err(InflateError::BadSymbol),
        }
    }
    if lens.len() != hlit + hdist {
        return Err(InflateError::BadHuffmanTable);
    }
    let lit = Decoder::new(&lens[..hlit]).ok_or(InflateError::BadHuffmanTable)?;
    let dist = Decoder::new(&lens[hlit..]).ok_or(InflateError::BadHuffmanTable)?;
    Ok((lit, dist))
}

fn inflate_block(
    r: &mut BitReader<'_>,
    lit: &Decoder,
    dist: &Decoder,
    out: &mut Vec<u8>,
) -> Result<(), InflateError> {
    loop {
        let sym = lit.decode(r).ok_or(InflateError::UnexpectedEof)?;
        match sym {
            0..=255 => out.push(sym as u8),
            256 => return Ok(()),
            257..=285 => {
                let (base, extra) = LENGTH_TABLE[(sym - 257) as usize];
                let len = base as usize
                    + r.read_bits(extra as u32)
                        .ok_or(InflateError::UnexpectedEof)? as usize;
                let dsym = dist.decode(r).ok_or(InflateError::UnexpectedEof)?;
                if dsym >= 30 {
                    return Err(InflateError::BadSymbol);
                }
                let (dbase, dextra) = DIST_TABLE[dsym as usize];
                let d = dbase as usize
                    + r.read_bits(dextra as u32)
                        .ok_or(InflateError::UnexpectedEof)? as usize;
                if d > out.len() {
                    return Err(InflateError::BadDistance);
                }
                let start = out.len() - d;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
            _ => return Err(InflateError::BadSymbol),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_truncated_input() {
        assert_eq!(inflate(&[]), Err(InflateError::UnexpectedEof));
        // stored-block header cut short
        assert!(inflate(&[0b000]).is_err());
    }

    #[test]
    fn rejects_reserved_block_type() {
        // BFINAL=1, BTYPE=11
        assert_eq!(inflate(&[0b0000_0111]), Err(InflateError::BadBlockType));
    }

    #[test]
    fn rejects_bad_stored_length_check() {
        // BFINAL=1, BTYPE=00, then LEN=1, NLEN=1 (must be !LEN)
        let bytes = [0b0000_0001, 0x01, 0x00, 0x01, 0x00];
        assert_eq!(inflate(&bytes), Err(InflateError::BadStoredLength));
    }

    #[test]
    fn decodes_handwritten_stored_block() {
        // BFINAL=1 BTYPE=00, aligned, LEN=3, NLEN=!3, "abc"
        let bytes = [0b0000_0001, 0x03, 0x00, 0xFC, 0xFF, b'a', b'b', b'c'];
        assert_eq!(inflate(&bytes).unwrap(), b"abc");
    }

    #[test]
    fn rejects_distance_past_start() {
        // craft via compressor then corrupt? simpler: fixed block with a
        // match at offset before any output — build by hand:
        // BFINAL=1, BTYPE=01, then length code 257 (len 3) = 0000001,
        // distance code 0 (dist 1) = 00000, but output is empty
        let mut w = crate::bitio::BitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0b01, 2);
        w.write_code(0b0000001, 7); // symbol 257
        w.write_code(0b00000, 5); // distance 1
        let bytes = w.finish();
        assert_eq!(inflate(&bytes), Err(InflateError::BadDistance));
    }
}
