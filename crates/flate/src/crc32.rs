//! CRC-32 (the gzip/zlib polynomial 0xEDB88320, reflected form).

/// Lazily built 256-entry lookup table.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32 of `data` (initial value 0, as gzip expects).
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = !0u32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // standard test vector
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc_distinguishes_single_bit_flips() {
        let a = crc32(b"hello world");
        let mut data = *b"hello world";
        data[3] ^= 1;
        assert_ne!(crc32(&data), a);
    }
}
