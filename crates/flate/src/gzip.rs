//! The gzip container (RFC 1952): header, DEFLATE body, CRC-32 +
//! length trailer.

use crate::crc32::crc32;
use crate::deflate::deflate_compress;
use crate::inflate::{inflate, InflateError};
use std::fmt;

/// Gzip decode failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GzipError {
    TooShort,
    BadMagic,
    UnsupportedMethod,
    Inflate(InflateError),
    CrcMismatch,
    LengthMismatch,
}

impl fmt::Display for GzipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GzipError::TooShort => write!(f, "input shorter than a gzip frame"),
            GzipError::BadMagic => write!(f, "bad gzip magic bytes"),
            GzipError::UnsupportedMethod => write!(f, "unsupported compression method"),
            GzipError::Inflate(e) => write!(f, "deflate error: {e}"),
            GzipError::CrcMismatch => write!(f, "CRC-32 mismatch"),
            GzipError::LengthMismatch => write!(f, "ISIZE mismatch"),
        }
    }
}

impl std::error::Error for GzipError {}

/// Compresses `data` into a complete gzip member (no filename, mtime 0,
/// "unknown" OS — deterministic output).
pub fn gzip_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 32);
    out.extend_from_slice(&[
        0x1F, 0x8B, // magic
        0x08, // CM = deflate
        0x00, // FLG: none
        0, 0, 0, 0,    // MTIME = 0
        0x00, // XFL
        0xFF, // OS = unknown
    ]);
    out.extend_from_slice(&deflate_compress(data));
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

/// Decompresses a gzip member produced by [`gzip_compress`] (or any
/// single-member stream without optional header fields beyond FEXTRA/
/// FNAME/FCOMMENT, which are skipped).
pub fn gzip_decompress(data: &[u8]) -> Result<Vec<u8>, GzipError> {
    if data.len() < 18 {
        return Err(GzipError::TooShort);
    }
    if data[0] != 0x1F || data[1] != 0x8B {
        return Err(GzipError::BadMagic);
    }
    if data[2] != 0x08 {
        return Err(GzipError::UnsupportedMethod);
    }
    let flg = data[3];
    let mut pos = 10;
    if flg & 0x04 != 0 {
        // FEXTRA
        if data.len() < pos + 2 {
            return Err(GzipError::TooShort);
        }
        let xlen = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
        pos += 2 + xlen;
    }
    for flag in [0x08u8, 0x10] {
        // FNAME, FCOMMENT: zero-terminated
        if flg & flag != 0 {
            while pos < data.len() && data[pos] != 0 {
                pos += 1;
            }
            pos += 1;
        }
    }
    if flg & 0x02 != 0 {
        pos += 2; // FHCRC
    }
    if data.len() < pos + 8 {
        return Err(GzipError::TooShort);
    }
    let body = &data[pos..data.len() - 8];
    let out = inflate(body).map_err(GzipError::Inflate)?;
    let trailer = &data[data.len() - 8..];
    let expect_crc = u32::from_le_bytes(trailer[0..4].try_into().unwrap());
    let expect_len = u32::from_le_bytes(trailer[4..8].try_into().unwrap());
    if crc32(&out) != expect_crc {
        return Err(GzipError::CrcMismatch);
    }
    if out.len() as u32 != expect_len {
        return Err(GzipError::LengthMismatch);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_basics() {
        for data in [
            &b""[..],
            b"hello",
            b"hello hello hello hello hello hello",
            &[0u8; 10_000][..],
        ] {
            let gz = gzip_compress(data);
            assert_eq!(gzip_decompress(&gz).unwrap(), data);
        }
    }

    #[test]
    fn header_is_deterministic_and_standard() {
        let gz = gzip_compress(b"x");
        assert_eq!(&gz[..4], &[0x1F, 0x8B, 0x08, 0x00]);
        assert_eq!(gzip_compress(b"x"), gz);
    }

    #[test]
    fn corrupted_body_fails_crc() {
        let mut gz = gzip_compress(b"some reasonably long input to corrupt safely");
        // flip a bit mid-body (stored-block payload byte)
        let mid = gz.len() / 2;
        gz[mid] ^= 0x10;
        let r = gzip_decompress(&gz);
        assert!(r.is_err(), "corruption must not pass");
    }

    #[test]
    fn rejects_wrong_magic() {
        let mut gz = gzip_compress(b"abc");
        gz[0] = 0x1E;
        assert_eq!(gzip_decompress(&gz), Err(GzipError::BadMagic));
    }

    #[test]
    fn rejects_truncated() {
        let gz = gzip_compress(b"abcdef");
        assert!(gzip_decompress(&gz[..10]).is_err());
    }

    #[test]
    fn external_gzip_accepts_our_output_if_available() {
        // cross-validate against the system gzip when present
        let have = std::process::Command::new("gzip")
            .arg("--version")
            .output()
            .is_ok_and(|o| o.status.success());
        if !have {
            eprintln!("system gzip not found; skipping");
            return;
        }
        use std::io::Write;
        let data = b"cross validation payload, repeated: cross validation payload";
        let gz = gzip_compress(data);
        let mut child = std::process::Command::new("gzip")
            .args(["-dc"])
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .spawn()
            .unwrap();
        child.stdin.as_mut().unwrap().write_all(&gz).unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(out.status.success(), "system gzip rejected our stream");
        assert_eq!(out.stdout, data);
    }

    #[test]
    fn we_accept_external_gzip_output_if_available() {
        let have = std::process::Command::new("gzip")
            .arg("--version")
            .output()
            .is_ok_and(|o| o.status.success());
        if !have {
            eprintln!("system gzip not found; skipping");
            return;
        }
        use std::io::Write;
        let data = b"the other direction: decode what the system gzip emits";
        let mut child = std::process::Command::new("gzip")
            .args(["-c"])
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .spawn()
            .unwrap();
        child.stdin.as_mut().unwrap().write_all(data).unwrap();
        let out = child.wait_with_output().unwrap();
        assert_eq!(gzip_decompress(&out.stdout).unwrap(), data);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_round_trip_random(data in proptest::collection::vec(any::<u8>(), 0..4000)) {
            let gz = gzip_compress(&data);
            prop_assert_eq!(gzip_decompress(&gz).unwrap(), data);
        }

        #[test]
        fn prop_round_trip_structured(runs in proptest::collection::vec((any::<u8>(), 1usize..200), 0..40)) {
            let mut data = Vec::new();
            for (b, n) in runs {
                data.extend(std::iter::repeat_n(b, n));
            }
            let gz = gzip_compress(&data);
            prop_assert_eq!(gzip_decompress(&gz).unwrap(), data);
        }
    }
}
