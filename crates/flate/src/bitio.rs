//! LSB-first bit I/O, as DEFLATE requires.

/// Accumulates bits least-significant-first into a byte stream.
#[derive(Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Writes the low `n` bits of `value`, LSB first.
    pub fn write_bits(&mut self, value: u32, n: u32) {
        debug_assert!(n <= 32);
        debug_assert!(n == 32 || value < (1 << n));
        self.acc |= (value as u64) << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.bytes.push((self.acc & 0xFF) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Writes a Huffman code: `len` bits with the *most significant
    /// code bit first* (DEFLATE packs codes in reverse bit order
    /// relative to everything else).
    pub fn write_code(&mut self, code: u32, len: u32) {
        let mut rev = 0u32;
        for i in 0..len {
            rev |= ((code >> i) & 1) << (len - 1 - i);
        }
        self.write_bits(rev, len);
    }

    /// Pads to a byte boundary with zero bits.
    pub fn align_byte(&mut self) {
        if self.nbits > 0 {
            self.bytes.push((self.acc & 0xFF) as u8);
            self.acc = 0;
            self.nbits = 0;
        }
    }

    /// Writes a whole byte (must be byte-aligned).
    pub fn write_byte(&mut self, b: u8) {
        debug_assert_eq!(self.nbits, 0, "write_byte requires alignment");
        self.bytes.push(b);
    }

    /// Current output length in bits (for size comparisons).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8 + self.nbits as usize
    }

    /// Finishes (byte-aligning) and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.align_byte();
        self.bytes
    }
}

/// Reads bits least-significant-first from a byte stream.
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    pub fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader {
            bytes,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    fn refill(&mut self) {
        while self.nbits <= 56 && self.pos < self.bytes.len() {
            self.acc |= (self.bytes[self.pos] as u64) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
    }

    /// Reads `n` bits (LSB first). Returns `None` past end of input.
    pub fn read_bits(&mut self, n: u32) -> Option<u32> {
        debug_assert!(n <= 32);
        self.refill();
        if self.nbits < n {
            return None;
        }
        let v = (self.acc & ((1u64 << n) - 1)) as u32;
        self.acc >>= n;
        self.nbits -= n;
        Some(v)
    }

    /// Reads one bit.
    pub fn read_bit(&mut self) -> Option<u32> {
        self.read_bits(1)
    }

    /// Discards bits up to the next byte boundary.
    pub fn align_byte(&mut self) {
        let drop = self.nbits % 8;
        self.acc >>= drop;
        self.nbits -= drop;
    }

    /// Reads a whole byte after alignment.
    pub fn read_byte(&mut self) -> Option<u8> {
        self.read_bits(8).map(|b| b as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xABCD, 16);
        w.write_bits(1, 1);
        w.write_bits(0x3FFFFFFF, 30);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3), Some(0b101));
        assert_eq!(r.read_bits(16), Some(0xABCD));
        assert_eq!(r.read_bits(1), Some(1));
        assert_eq!(r.read_bits(30), Some(0x3FFFFFFF));
    }

    #[test]
    fn code_bits_are_reversed() {
        let mut w = BitWriter::new();
        // code 0b110 (MSB first) must appear as bits 1,1,0 in stream order
        w.write_code(0b110, 3);
        let bytes = w.finish();
        assert_eq!(bytes[0] & 0b111, 0b011);
    }

    #[test]
    fn align_and_byte_io() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.align_byte();
        w.write_byte(0x42);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0x01, 0x42]);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bit(), Some(1));
        r.align_byte();
        assert_eq!(r.read_byte(), Some(0x42));
    }

    #[test]
    fn reading_past_end_returns_none() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8), Some(0xFF));
        assert_eq!(r.read_bits(1), None);
    }

    #[test]
    fn bit_len_tracks_writes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 5);
        assert_eq!(w.bit_len(), 5);
        w.write_bits(0, 5);
        assert_eq!(w.bit_len(), 10);
    }
}
