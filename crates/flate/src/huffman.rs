//! Canonical Huffman codes with a maximum code length, plus the
//! compact canonical decoder DEFLATE needs.

use crate::bitio::BitReader;

/// Computes length-limited code lengths for the given symbol
/// frequencies. Zero-frequency symbols get length 0 (no code).
///
/// Builds a standard Huffman tree, then redistributes overlong codes
/// (zlib's approach): any length > `max_len` is clipped and paid for
/// by deepening the shallowest deep leaves until Kraft equality holds.
pub fn build_lengths(freqs: &[u32], max_len: u32) -> Vec<u32> {
    let n = freqs.len();
    let used: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    let mut lengths = vec![0u32; n];
    match used.len() {
        0 => return lengths,
        1 => {
            // a single symbol still needs a 1-bit code in DEFLATE
            lengths[used[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // heap-based Huffman: nodes are (weight, id); leaves are 0..n
    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        id: usize,
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // min-heap via reverse; tie-break on id for determinism
            other.weight.cmp(&self.weight).then(other.id.cmp(&self.id))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut heap = std::collections::BinaryHeap::new();
    let mut parent = vec![usize::MAX; n + used.len()];
    for &i in &used {
        heap.push(Node {
            weight: freqs[i] as u64,
            id: i,
        });
    }
    let mut next_id = n;
    while heap.len() > 1 {
        let a = heap.pop().unwrap();
        let b = heap.pop().unwrap();
        parent[a.id] = next_id;
        parent[b.id] = next_id;
        heap.push(Node {
            weight: a.weight + b.weight,
            id: next_id,
        });
        next_id += 1;
    }
    // depth of each leaf = chain length to the root
    for &i in &used {
        let mut d = 0;
        let mut v = i;
        while parent[v] != usize::MAX {
            v = parent[v];
            d += 1;
        }
        lengths[i] = d;
    }

    // enforce the length limit by Kraft-sum repair
    if lengths.iter().any(|&l| l > max_len) {
        // count codes per length, clip, then fix the Kraft sum
        let mut counts = vec![0u64; (max_len + 1) as usize];
        for &i in &used {
            counts[lengths[i].min(max_len) as usize] += 1;
        }
        // Kraft sum in units of 2^-max_len
        let unit = |l: u32| 1u64 << (max_len - l);
        let mut kraft: u64 = used.iter().map(|&i| unit(lengths[i].min(max_len))).sum();
        let budget = 1u64 << max_len;
        // while over budget, deepen a symbol at the smallest length > ...
        // standard fix: repeatedly take a leaf at the largest length
        // < max_len and push it one deeper
        let mut lens: Vec<u32> = used.iter().map(|&i| lengths[i].min(max_len)).collect();
        while kraft > budget {
            // find the deepest leaf with length < max_len
            let (idx, _) = lens
                .iter()
                .enumerate()
                .filter(|(_, &l)| l < max_len)
                .max_by_key(|(_, &l)| l)
                .expect("repairable");
            kraft -= unit(lens[idx]);
            lens[idx] += 1;
            kraft += unit(lens[idx]);
        }
        for (j, &i) in used.iter().enumerate() {
            lengths[i] = lens[j];
        }
        let _ = counts;
    }
    lengths
}

/// Assigns canonical codes to lengths (RFC 1951 §3.2.2). Returns
/// `codes[i]` = code value (MSB-first) for symbol `i`.
pub fn canonical_codes(lengths: &[u32]) -> Vec<u32> {
    let max_len = lengths.iter().copied().max().unwrap_or(0);
    let mut bl_count = vec![0u32; (max_len + 1) as usize];
    for &l in lengths {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    let mut next_code = vec![0u32; (max_len + 2) as usize];
    let mut code = 0u32;
    for bits in 1..=max_len {
        code = (code + bl_count[(bits - 1) as usize]) << 1;
        next_code[bits as usize] = code;
    }
    lengths
        .iter()
        .map(|&l| {
            if l == 0 {
                0
            } else {
                let c = next_code[l as usize];
                next_code[l as usize] += 1;
                c
            }
        })
        .collect()
}

/// A canonical decoder: reads one symbol bit by bit using the
/// first-code-per-length tables.
pub struct Decoder {
    /// `first_code[l]`: smallest code of length `l`.
    first_code: Vec<u32>,
    /// `first_index[l]`: index into `symbols` of that code.
    first_index: Vec<u32>,
    /// count of codes per length.
    counts: Vec<u32>,
    /// symbols sorted by (length, symbol).
    symbols: Vec<u32>,
    max_len: u32,
}

impl Decoder {
    /// Builds a decoder from code lengths. Returns `None` if the
    /// lengths oversubscribe the Kraft inequality.
    pub fn new(lengths: &[u32]) -> Option<Decoder> {
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        if max_len == 0 {
            return Some(Decoder {
                first_code: vec![0],
                first_index: vec![0],
                counts: vec![0],
                symbols: Vec::new(),
                max_len: 0,
            });
        }
        let mut counts = vec![0u32; (max_len + 1) as usize];
        for &l in lengths {
            if l > 0 {
                counts[l as usize] += 1;
            }
        }
        // Kraft check
        let mut left = 1u64;
        for l in 1..=max_len {
            left <<= 1;
            let c = counts[l as usize] as u64;
            if c > left {
                return None; // oversubscribed
            }
            left -= c;
        }
        let mut symbols = Vec::with_capacity(lengths.len());
        for l in 1..=max_len {
            for (sym, &sl) in lengths.iter().enumerate() {
                if sl == l {
                    symbols.push(sym as u32);
                }
            }
        }
        let mut first_code = vec![0u32; (max_len + 1) as usize];
        let mut first_index = vec![0u32; (max_len + 1) as usize];
        let mut code = 0u32;
        let mut index = 0u32;
        for l in 1..=max_len {
            code <<= 1;
            first_code[l as usize] = code;
            first_index[l as usize] = index;
            code += counts[l as usize];
            index += counts[l as usize];
        }
        Some(Decoder {
            first_code,
            first_index,
            counts,
            symbols,
            max_len,
        })
    }

    /// Decodes one symbol. Returns `None` on malformed input or EOF.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Option<u32> {
        let mut code = 0u32;
        for l in 1..=self.max_len {
            code = (code << 1) | r.read_bit()?;
            let li = l as usize;
            let count = self.counts[li];
            if count > 0 && code < self.first_code[li] + count {
                let offset = code - self.first_code[li];
                return Some(self.symbols[(self.first_index[li] + offset) as usize]);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitio::BitWriter;

    #[test]
    fn lengths_respect_kraft() {
        let freqs = [5, 9, 12, 13, 16, 45];
        let lens = build_lengths(&freqs, 15);
        let kraft: f64 = lens
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 0.5f64.powi(l as i32))
            .sum();
        assert!(kraft <= 1.0 + 1e-12, "Kraft sum {kraft}");
        // classic Huffman: highest frequency gets shortest code
        assert!(lens[5] <= lens[0]);
    }

    #[test]
    fn single_symbol_gets_one_bit() {
        let lens = build_lengths(&[0, 7, 0], 15);
        assert_eq!(lens, vec![0, 1, 0]);
    }

    #[test]
    fn length_limit_is_enforced() {
        // fibonacci-ish frequencies force deep trees
        let freqs: Vec<u32> = [1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377].to_vec();
        let lens = build_lengths(&freqs, 7);
        assert!(lens.iter().all(|&l| l <= 7), "{lens:?}");
        let kraft: f64 = lens
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 0.5f64.powi(l as i32))
            .sum();
        assert!(kraft <= 1.0 + 1e-12);
    }

    #[test]
    fn canonical_codes_are_ordered() {
        // RFC 1951 example: lengths (3,3,3,3,3,2,4,4) for A..H
        let lengths = [3, 3, 3, 3, 3, 2, 4, 4];
        let codes = canonical_codes(&lengths);
        assert_eq!(
            codes,
            vec![0b010, 0b011, 0b100, 0b101, 0b110, 0b00, 0b1110, 0b1111]
        );
    }

    #[test]
    fn encode_decode_round_trip() {
        let freqs = [10, 1, 1, 5, 3, 0, 7];
        let lens = build_lengths(&freqs, 15);
        let codes = canonical_codes(&lens);
        let dec = Decoder::new(&lens).unwrap();
        let message = [0u32, 3, 6, 0, 4, 1, 0, 2, 6, 3, 0];
        let mut w = BitWriter::new();
        for &sym in &message {
            w.write_code(codes[sym as usize], lens[sym as usize]);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &expect in &message {
            assert_eq!(dec.decode(&mut r), Some(expect));
        }
    }

    #[test]
    fn decoder_rejects_oversubscribed_lengths() {
        // three 1-bit codes cannot exist
        assert!(Decoder::new(&[1, 1, 1]).is_none());
    }

    #[test]
    fn empty_and_zero_length_tables() {
        let d = Decoder::new(&[0, 0, 0]).unwrap();
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(d.decode(&mut r), None);
    }
}
