//! LZ77 tokenization with a 32 KiB hash-chained window (RFC 1951
//! limits: match length 3–258, distance 1–32768).

pub const MIN_MATCH: usize = 3;
pub const MAX_MATCH: usize = 258;
pub const WINDOW: usize = 32 * 1024;

/// One LZ77 token.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Token {
    Literal(u8),
    Match { len: u16, dist: u16 },
}

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let v = u32::from(data[i]) | (u32::from(data[i + 1]) << 8) | (u32::from(data[i + 2]) << 16);
    ((v.wrapping_mul(0x9E37_79B1)) >> (32 - HASH_BITS)) as usize
}

/// Greedy tokenization with one-step lazy matching (defer a match if
/// the next position matches longer), zlib-style.
pub fn tokenize(data: &[u8]) -> Vec<Token> {
    let n = data.len();
    let mut tokens = Vec::with_capacity(n / 2 + 8);
    if n < MIN_MATCH {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }
    // head[h]: most recent position with hash h (+1; 0 = none)
    let mut head = vec![0u32; HASH_SIZE];
    // prev[i % WINDOW]: previous position in the chain for position i
    let mut prev = vec![0u32; WINDOW];

    let insert = |head: &mut [u32], prev: &mut [u32], data: &[u8], i: usize| {
        if i + MIN_MATCH <= data.len() {
            let h = hash3(data, i);
            prev[i % WINDOW] = head[h];
            head[h] = (i + 1) as u32;
        }
    };

    let best_match =
        |head: &[u32], prev: &[u32], data: &[u8], i: usize| -> Option<(usize, usize)> {
            if i + MIN_MATCH > data.len() {
                return None;
            }
            let h = hash3(data, i);
            let mut cand = head[h] as usize;
            let mut best_len = MIN_MATCH - 1;
            let mut best_dist = 0;
            let max_len = MAX_MATCH.min(data.len() - i);
            let mut chain = 128; // bounded chain walk
            while cand > 0 && chain > 0 {
                let j = cand - 1;
                if i <= j || i - j > WINDOW {
                    break;
                }
                chain -= 1;
                let mut l = 0;
                while l < max_len && data[j + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - j;
                    if l == max_len {
                        break;
                    }
                }
                cand = prev[j % WINDOW] as usize;
            }
            (best_len >= MIN_MATCH).then_some((best_len, best_dist))
        };

    let mut i = 0;
    while i < n {
        let cur = best_match(&head, &prev, data, i);
        match cur {
            None => {
                tokens.push(Token::Literal(data[i]));
                insert(&mut head, &mut prev, data, i);
                i += 1;
            }
            Some((len, dist)) => {
                // lazy: if the next position has a strictly longer match,
                // emit a literal and defer
                insert(&mut head, &mut prev, data, i);
                let next = if i + 1 < n {
                    best_match(&head, &prev, data, i + 1)
                } else {
                    None
                };
                if let Some((nlen, _)) = next {
                    if nlen > len {
                        tokens.push(Token::Literal(data[i]));
                        i += 1;
                        continue;
                    }
                }
                tokens.push(Token::Match {
                    len: len as u16,
                    dist: dist as u16,
                });
                for k in 1..len {
                    insert(&mut head, &mut prev, data, i + k);
                }
                i += len;
            }
        }
    }
    tokens
}

/// Reconstructs the byte stream from tokens (the LZ77 inverse; used by
/// the round-trip tests).
#[cfg_attr(not(test), allow(dead_code))]
pub fn detokenize(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let start = out.len() - dist as usize;
                for k in 0..len as usize {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn literal_only_input() {
        let tokens = tokenize(b"ab");
        assert_eq!(tokens, vec![Token::Literal(b'a'), Token::Literal(b'b')]);
    }

    #[test]
    fn finds_repeats() {
        let tokens = tokenize(b"abcabcabcabc");
        assert!(tokens.iter().any(|t| matches!(t, Token::Match { .. })));
        assert_eq!(detokenize(&tokens), b"abcabcabcabc");
    }

    #[test]
    fn run_of_one_byte_uses_overlapping_match() {
        let data = vec![b'x'; 1000];
        let tokens = tokenize(&data);
        // should be roughly: literal 'x' + a few long matches
        assert!(tokens.len() < 20, "got {} tokens", tokens.len());
        assert_eq!(detokenize(&tokens), data);
    }

    #[test]
    fn match_length_capped_at_258() {
        let data = vec![7u8; 4096];
        for t in tokenize(&data) {
            if let Token::Match { len, .. } = t {
                assert!((MIN_MATCH..=MAX_MATCH).contains(&(len as usize)));
            }
        }
    }

    #[test]
    fn empty_input() {
        assert!(tokenize(b"").is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_round_trip(data in proptest::collection::vec(any::<u8>(), 0..2000)) {
            let tokens = tokenize(&data);
            prop_assert_eq!(detokenize(&tokens), data);
        }

        #[test]
        fn prop_round_trip_low_entropy(data in proptest::collection::vec(0u8..4, 0..3000)) {
            let tokens = tokenize(&data);
            prop_assert_eq!(detokenize(&tokens), &data[..]);
            // low-entropy data must actually compress into matches
            if data.len() > 100 {
                prop_assert!(tokens.len() < data.len());
            }
        }
    }
}
