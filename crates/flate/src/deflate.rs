//! The DEFLATE compressor (RFC 1951): stored, fixed-Huffman, and
//! dynamic-Huffman blocks; the smallest encoding wins.

use crate::bitio::BitWriter;
use crate::huffman::{build_lengths, canonical_codes};
use crate::lz77::{tokenize, Token};

/// (base, extra_bits) for length codes 257..=285.
pub(crate) const LENGTH_TABLE: [(u16, u8); 29] = [
    (3, 0),
    (4, 0),
    (5, 0),
    (6, 0),
    (7, 0),
    (8, 0),
    (9, 0),
    (10, 0),
    (11, 1),
    (13, 1),
    (15, 1),
    (17, 1),
    (19, 2),
    (23, 2),
    (27, 2),
    (31, 2),
    (35, 3),
    (43, 3),
    (51, 3),
    (59, 3),
    (67, 4),
    (83, 4),
    (99, 4),
    (115, 4),
    (131, 5),
    (163, 5),
    (195, 5),
    (227, 5),
    (258, 0),
];

/// (base, extra_bits) for distance codes 0..=29.
pub(crate) const DIST_TABLE: [(u16, u8); 30] = [
    (1, 0),
    (2, 0),
    (3, 0),
    (4, 0),
    (5, 1),
    (7, 1),
    (9, 2),
    (13, 2),
    (17, 3),
    (25, 3),
    (33, 4),
    (49, 4),
    (65, 5),
    (97, 5),
    (129, 6),
    (193, 6),
    (257, 7),
    (385, 7),
    (513, 8),
    (769, 8),
    (1025, 9),
    (1537, 9),
    (2049, 10),
    (3073, 10),
    (4097, 11),
    (6145, 11),
    (8193, 12),
    (12289, 12),
    (16385, 13),
    (24577, 13),
];

/// Order of code-length-code lengths in the dynamic header.
pub(crate) const CLC_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// Maps a match length (3..=258) to (code, extra_bits, extra_value).
pub(crate) fn length_code(len: u16) -> (u16, u8, u16) {
    debug_assert!((3..=258).contains(&len));
    let idx = LENGTH_TABLE
        .iter()
        .rposition(|&(base, _)| base <= len)
        .expect("length in range");
    // code 285 is exactly 258; lower codes span [base, base + 2^extra)
    let (base, extra) = LENGTH_TABLE[idx];
    (257 + idx as u16, extra, len - base)
}

/// Maps a distance (1..=32768) to (code, extra_bits, extra_value).
pub(crate) fn dist_code(dist: u16) -> (u16, u8, u16) {
    debug_assert!(dist >= 1);
    let idx = DIST_TABLE
        .iter()
        .rposition(|&(base, _)| base <= dist)
        .expect("distance in range");
    let (base, extra) = DIST_TABLE[idx];
    (idx as u16, extra, dist - base)
}

/// The fixed literal/length code lengths (RFC 1951 §3.2.6).
pub(crate) fn fixed_lit_lengths() -> Vec<u32> {
    let mut l = vec![8u32; 288];
    for x in l.iter_mut().take(256).skip(144) {
        *x = 9;
    }
    for x in l.iter_mut().take(280).skip(256) {
        *x = 7;
    }
    l
}

/// The fixed distance code lengths (all 5 bits).
pub(crate) fn fixed_dist_lengths() -> Vec<u32> {
    vec![5u32; 30]
}

/// Compresses `data` into a raw DEFLATE stream (single final block;
/// stored blocks are chunked as required).
pub fn deflate_compress(data: &[u8]) -> Vec<u8> {
    let tokens = tokenize(data);

    // frequencies (including the end-of-block symbol 256)
    let mut lit_freq = vec![0u32; 286];
    let mut dist_freq = vec![0u32; 30];
    for t in &tokens {
        match *t {
            Token::Literal(b) => lit_freq[b as usize] += 1,
            Token::Match { len, dist } => {
                lit_freq[length_code(len).0 as usize] += 1;
                dist_freq[dist_code(dist).0 as usize] += 1;
            }
        }
    }
    lit_freq[256] += 1;

    // candidate 1: dynamic block
    let dyn_lit_lens = build_lengths(&lit_freq, 15);
    let mut dyn_dist_lens = build_lengths(&dist_freq, 15);
    if dyn_dist_lens.iter().all(|&l| l == 0) {
        dyn_dist_lens[0] = 1; // decoders expect ≥ 1 distance code
    }
    let dyn_body_bits = body_bits(&tokens, &dyn_lit_lens, &dyn_dist_lens);
    let header = DynamicHeader::build(&dyn_lit_lens, &dyn_dist_lens);
    let dyn_total = 3 + header.bit_len() + dyn_body_bits;

    // candidate 2: fixed block
    let fix_lit = fixed_lit_lengths();
    let fix_dist = fixed_dist_lengths();
    let fix_total = 3 + body_bits(&tokens, &fix_lit, &fix_dist);

    // candidate 3: stored
    let stored_total = stored_bits(data.len());

    let mut w = BitWriter::new();
    if stored_total <= dyn_total && stored_total <= fix_total {
        emit_stored(&mut w, data);
    } else if dyn_total <= fix_total {
        w.write_bits(1, 1); // BFINAL
        w.write_bits(0b10, 2); // dynamic
        header.emit(&mut w);
        emit_body(&mut w, &tokens, &dyn_lit_lens, &dyn_dist_lens);
    } else {
        w.write_bits(1, 1);
        w.write_bits(0b01, 2); // fixed
        emit_body(&mut w, &tokens, &fix_lit, &fix_dist);
    }
    w.finish()
}

fn stored_bits(len: usize) -> usize {
    // per stored block: 3 bits type + pad + 4 bytes LEN/NLEN; 65535 max
    let blocks = len.div_ceil(65535).max(1);
    blocks * (8 + 32) + len * 8
}

fn emit_stored(w: &mut BitWriter, data: &[u8]) {
    let chunks: Vec<&[u8]> = if data.is_empty() {
        vec![&[][..]]
    } else {
        data.chunks(65535).collect()
    };
    for (i, chunk) in chunks.iter().enumerate() {
        let last = i + 1 == chunks.len();
        w.write_bits(u32::from(last), 1);
        w.write_bits(0b00, 2);
        w.align_byte();
        let len = chunk.len() as u16;
        w.write_byte((len & 0xFF) as u8);
        w.write_byte((len >> 8) as u8);
        w.write_byte((!len & 0xFF) as u8);
        w.write_byte(((!len) >> 8) as u8);
        for &b in *chunk {
            w.write_byte(b);
        }
    }
}

fn body_bits(tokens: &[Token], lit_lens: &[u32], dist_lens: &[u32]) -> usize {
    let mut bits = lit_lens[256] as usize; // EOB
    for t in tokens {
        match *t {
            Token::Literal(b) => bits += lit_lens[b as usize] as usize,
            Token::Match { len, dist } => {
                let (lc, le, _) = length_code(len);
                let (dc, de, _) = dist_code(dist);
                bits += lit_lens[lc as usize] as usize + le as usize;
                bits += dist_lens[dc as usize] as usize + de as usize;
            }
        }
    }
    bits
}

fn emit_body(w: &mut BitWriter, tokens: &[Token], lit_lens: &[u32], dist_lens: &[u32]) {
    let lit_codes = canonical_codes(lit_lens);
    let dist_codes = canonical_codes(dist_lens);
    for t in tokens {
        match *t {
            Token::Literal(b) => {
                w.write_code(lit_codes[b as usize], lit_lens[b as usize]);
            }
            Token::Match { len, dist } => {
                let (lc, le, lv) = length_code(len);
                w.write_code(lit_codes[lc as usize], lit_lens[lc as usize]);
                if le > 0 {
                    w.write_bits(lv as u32, le as u32);
                }
                let (dc, de, dv) = dist_code(dist);
                w.write_code(dist_codes[dc as usize], dist_lens[dc as usize]);
                if de > 0 {
                    w.write_bits(dv as u32, de as u32);
                }
            }
        }
    }
    w.write_code(lit_codes[256], lit_lens[256]); // end of block
}

/// The dynamic-block header: RLE-coded code lengths plus the
/// code-length code.
struct DynamicHeader {
    hlit: usize,
    hdist: usize,
    clc_lens: Vec<u32>,
    /// RLE symbols: (symbol, extra_bits, extra_value)
    rle: Vec<(u32, u32, u32)>,
}

impl DynamicHeader {
    fn build(lit_lens: &[u32], dist_lens: &[u32]) -> DynamicHeader {
        let hlit = lit_lens
            .iter()
            .rposition(|&l| l > 0)
            .map_or(257, |p| (p + 1).max(257));
        let hdist = dist_lens
            .iter()
            .rposition(|&l| l > 0)
            .map_or(1, |p| (p + 1).max(1));
        // concatenated length sequence, RLE with 16/17/18
        let mut seq: Vec<u32> = Vec::with_capacity(hlit + hdist);
        seq.extend_from_slice(&lit_lens[..hlit]);
        seq.extend_from_slice(&dist_lens[..hdist]);
        let mut rle: Vec<(u32, u32, u32)> = Vec::new();
        let mut i = 0;
        while i < seq.len() {
            let v = seq[i];
            let mut run = 1;
            while i + run < seq.len() && seq[i + run] == v {
                run += 1;
            }
            if v == 0 {
                let mut left = run;
                while left >= 11 {
                    let take = left.min(138);
                    rle.push((18, 7, (take - 11) as u32));
                    left -= take;
                }
                if left >= 3 {
                    rle.push((17, 3, (left - 3) as u32));
                    left = 0;
                }
                for _ in 0..left {
                    rle.push((0, 0, 0));
                }
            } else {
                rle.push((v, 0, 0));
                let mut left = run - 1;
                while left >= 3 {
                    let take = left.min(6);
                    rle.push((16, 2, (take - 3) as u32));
                    left -= take;
                }
                for _ in 0..left {
                    rle.push((v, 0, 0));
                }
            }
            i += run;
        }
        // code-length code over the RLE symbols
        let mut clc_freq = vec![0u32; 19];
        for &(sym, _, _) in &rle {
            clc_freq[sym as usize] += 1;
        }
        let clc_lens = build_lengths(&clc_freq, 7);
        DynamicHeader {
            hlit,
            hdist,
            clc_lens,
            rle,
        }
    }

    fn hclen(&self) -> usize {
        let last = CLC_ORDER
            .iter()
            .rposition(|&s| self.clc_lens[s] > 0)
            .unwrap_or(3);
        (last + 1).max(4)
    }

    fn bit_len(&self) -> usize {
        let mut bits = 5 + 5 + 4 + self.hclen() * 3;
        for &(sym, extra, _) in &self.rle {
            bits += self.clc_lens[sym as usize] as usize + extra as usize;
        }
        bits
    }

    fn emit(&self, w: &mut BitWriter) {
        w.write_bits((self.hlit - 257) as u32, 5);
        w.write_bits((self.hdist - 1) as u32, 5);
        let hclen = self.hclen();
        w.write_bits((hclen - 4) as u32, 4);
        for &s in CLC_ORDER.iter().take(hclen) {
            w.write_bits(self.clc_lens[s], 3);
        }
        let clc_codes = canonical_codes(&self.clc_lens);
        for &(sym, extra, value) in &self.rle {
            w.write_code(clc_codes[sym as usize], self.clc_lens[sym as usize]);
            if extra > 0 {
                w.write_bits(value, extra);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inflate::inflate;

    #[test]
    fn length_code_boundaries() {
        assert_eq!(length_code(3), (257, 0, 0));
        assert_eq!(length_code(10), (264, 0, 0));
        assert_eq!(length_code(11), (265, 1, 0));
        assert_eq!(length_code(12), (265, 1, 1));
        assert_eq!(length_code(257), (284, 5, 30));
        assert_eq!(length_code(258), (285, 0, 0));
    }

    #[test]
    fn dist_code_boundaries() {
        assert_eq!(dist_code(1), (0, 0, 0));
        assert_eq!(dist_code(4), (3, 0, 0));
        assert_eq!(dist_code(5), (4, 1, 0));
        assert_eq!(dist_code(24577), (29, 13, 0));
        assert_eq!(dist_code(32768), (29, 13, 8191));
    }

    #[test]
    fn round_trip_text() {
        let data = b"the quick brown fox jumps over the lazy dog; \
                     the quick brown fox jumps over the lazy dog again";
        let c = deflate_compress(data);
        assert_eq!(inflate(&c).unwrap(), data);
        assert!(c.len() < data.len(), "repetitive text must shrink");
    }

    #[test]
    fn round_trip_empty_and_tiny() {
        for data in [&b""[..], b"a", b"ab", b"abc"] {
            let c = deflate_compress(data);
            assert_eq!(inflate(&c).unwrap(), data, "{data:?}");
        }
    }

    #[test]
    fn round_trip_incompressible() {
        // pseudo-random bytes: stored block should win, content preserved
        let mut data = Vec::with_capacity(5000);
        let mut x = 0x243F_6A88_85A3_08D3u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            data.push((x >> 33) as u8);
        }
        let c = deflate_compress(&data);
        assert_eq!(inflate(&c).unwrap(), data);
        assert!(c.len() <= data.len() + 64);
    }

    #[test]
    fn round_trip_highly_compressible() {
        let data = vec![0u8; 100_000];
        let c = deflate_compress(&data);
        assert_eq!(inflate(&c).unwrap(), data);
        assert!(
            c.len() < 1000,
            "100k zeros must compress hard, got {}",
            c.len()
        );
    }

    #[test]
    fn round_trip_all_byte_values() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let c = deflate_compress(&data);
        assert_eq!(inflate(&c).unwrap(), data);
    }

    #[test]
    fn stored_block_chunking_over_65535() {
        // force stored by using incompressible data > 65535 bytes
        let mut data = Vec::with_capacity(70_000);
        let mut x = 1u64;
        for _ in 0..70_000 {
            x = x
                .wrapping_mul(0x5851_F42D_4C95_7F2D)
                .wrapping_add(0x1405_7B7E_F767_814F);
            data.push((x >> 33) as u8);
        }
        let c = deflate_compress(&data);
        assert_eq!(inflate(&c).unwrap(), data);
    }
}
