//! A from-scratch DEFLATE (RFC 1951) and gzip (RFC 1952)
//! implementation.
//!
//! Fig. 6 of the paper measures the gzip-compressed size of
//! coefficient-matrix bit files as a function of their set-bit count.
//! Rather than shelling out to external tooling, this crate implements
//! the codec: LZ77 with a 32 KiB hash-chained window, canonical
//! Huffman coding (stored, fixed, and dynamic blocks — the smallest of
//! the three is emitted), CRC-32, and the gzip container. An inflater
//! is included so every compressor path is round-trip tested.
//!
//! # Example
//!
//! ```
//! let data = b"so much data, so much data, so much data";
//! let gz = fec_flate::gzip_compress(data);
//! assert!(gz.len() < data.len() + 20);
//! assert_eq!(fec_flate::gzip_decompress(&gz).unwrap(), data);
//! ```

#![forbid(unsafe_code)]

mod bitio;
mod crc32;
mod deflate;
mod gzip;
mod huffman;
mod inflate;
mod lz77;

pub use crc32::crc32;
pub use deflate::deflate_compress;
pub use gzip::{gzip_compress, gzip_decompress, GzipError};
pub use inflate::{inflate, InflateError};
