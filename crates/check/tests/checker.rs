//! Self-tests for the model checker: does it find the bugs it is
//! supposed to find, stay silent on correct code, and prune what it
//! claims to prune?

use fec_check::cell::UnsafeCell;
use fec_check::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use fec_check::{explore, thread, CheckError, Config};
use std::sync::Arc;

fn cfg() -> Config {
    Config {
        preemptions: 2,
        max_schedules: 50_000,
        ..Config::default()
    }
}

#[test]
fn unsynchronized_writes_race() {
    let err = explore(&cfg(), || {
        let cell = Arc::new(UnsafeCell::new(0u32));
        let c = Arc::clone(&cell);
        let t = thread::spawn(move || c.with_mut(|p| unsafe { *p += 1 }));
        cell.with_mut(|p| unsafe { *p += 1 });
        t.join();
    })
    .expect_err("two unsynchronized writers must race");
    assert!(matches!(err, CheckError::Race { .. }), "got: {err}");
}

#[test]
fn write_read_race_detected_in_every_order() {
    // no synchronization at all: even the sequential schedules expose
    // the race through the clocks (no adjacency needed)
    let err = explore(
        &Config {
            preemptions: 0,
            ..cfg()
        },
        || {
            let cell = Arc::new(UnsafeCell::new(0u32));
            let c = Arc::clone(&cell);
            let t = thread::spawn(move || c.with_mut(|p| unsafe { *p = 7 }));
            let _ = cell.with(|p| unsafe { *p });
            t.join();
        },
    )
    .expect_err("unsynchronized write/read must race even with 0 preemptions");
    assert!(matches!(err, CheckError::Race { .. }));
}

#[test]
fn release_acquire_message_passing_is_clean() {
    let report = explore(&cfg(), || {
        let data = Arc::new(UnsafeCell::new(0u32));
        let ready = Arc::new(AtomicBool::new(false));
        let (d, r) = (Arc::clone(&data), Arc::clone(&ready));
        let t = thread::spawn(move || {
            d.with_mut(|p| unsafe { *p = 42 });
            r.store(true, Ordering::Release);
        });
        if ready.load(Ordering::Acquire) {
            let v = data.with(|p| unsafe { *p });
            assert_eq!(v, 42, "acquire load must see the published value");
        }
        t.join();
    })
    .expect("release/acquire message passing is race-free");
    assert!(report.schedules > 1, "must explore more than one schedule");
}

#[test]
fn relaxed_message_passing_races() {
    let err = explore(&cfg(), || {
        let data = Arc::new(UnsafeCell::new(0u32));
        let ready = Arc::new(AtomicBool::new(false));
        let (d, r) = (Arc::clone(&data), Arc::clone(&ready));
        let t = thread::spawn(move || {
            d.with_mut(|p| unsafe { *p = 42 });
            r.store(true, Ordering::Relaxed); // missing Release
        });
        if ready.load(Ordering::Acquire) {
            let _ = data.with(|p| unsafe { *p });
        }
        t.join();
    })
    .expect_err("relaxed publication must be reported");
    assert!(matches!(err, CheckError::Race { .. }), "got: {err}");
}

#[test]
fn rmw_extends_release_sequence() {
    // Store(Release) then a Relaxed RMW by another thread: an acquire
    // load reading the RMW's value still synchronizes with the
    // original release store (C11 release sequences).
    explore(&cfg(), || {
        let data = Arc::new(UnsafeCell::new(0u32));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d1, f1) = (Arc::clone(&data), Arc::clone(&flag));
        let writer = thread::spawn(move || {
            d1.with_mut(|p| unsafe { *p = 9 });
            f1.store(1, Ordering::Release);
        });
        let f2 = Arc::clone(&flag);
        let bumper = thread::spawn(move || {
            // only bump once the flag is raised, so value 2 implies the
            // writer's release store is in the sequence
            if f2.load(Ordering::Relaxed) == 1 {
                f2.fetch_add(1, Ordering::Relaxed);
            }
        });
        if flag.load(Ordering::Acquire) == 2 {
            let v = data.with(|p| unsafe { *p });
            assert_eq!(v, 9);
        }
        writer.join();
        bumper.join();
    })
    .expect("release sequence through a relaxed RMW is race-free");
}

#[test]
fn atomic_counter_sums_under_all_schedules() {
    explore(&cfg(), || {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    n.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(n.load(Ordering::Relaxed), 2);
    })
    .expect("fetch_add increments are never lost");
}

#[test]
fn compare_exchange_elects_exactly_one() {
    explore(&cfg(), || {
        let slot = Arc::new(AtomicUsize::new(usize::MAX));
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let s = Arc::clone(&slot);
                thread::spawn(move || {
                    s.compare_exchange(usize::MAX, i, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                })
            })
            .collect();
        let wins: Vec<bool> = handles.into_iter().map(|h| h.join()).collect();
        assert_eq!(wins.iter().filter(|&&w| w).count(), 1);
        let winner = slot.load(Ordering::Acquire);
        assert!(wins[winner], "stored id must belong to the CAS winner");
    })
    .expect("CAS election is race-free");
}

#[test]
fn sleep_sets_prune_independent_operations() {
    // two threads storing to *different* atomics commute; sleep sets
    // should visit strictly fewer schedules than the full product
    let run = |sleep_sets: bool| {
        let config = Config {
            sleep_sets,
            ..cfg()
        };
        explore(&config, || {
            let a = Arc::new(AtomicUsize::new(0));
            let b = Arc::new(AtomicUsize::new(0));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t1 = thread::spawn(move || a2.store(1, Ordering::Relaxed));
            let t2 = thread::spawn(move || b2.store(1, Ordering::Relaxed));
            t1.join();
            t2.join();
            assert_eq!(a.load(Ordering::Relaxed) + b.load(Ordering::Relaxed), 2);
        })
        .expect("independent stores are race-free")
    };
    let with = run(true);
    let without = run(false);
    assert!(
        with.schedules < without.schedules && with.pruned > 0,
        "sleep sets must prune full schedules: {} (+{} abandoned) vs {}",
        with.schedules,
        with.pruned,
        without.schedules
    );
}

#[test]
fn exploration_is_deterministic() {
    let run = || {
        explore(&cfg(), || {
            let n = Arc::new(AtomicUsize::new(0));
            let n2 = Arc::clone(&n);
            let t = thread::spawn(move || n2.fetch_add(1, Ordering::Relaxed));
            n.fetch_add(2, Ordering::Relaxed);
            t.join();
        })
        .expect("race-free")
    };
    let (a, b) = (run(), run());
    assert_eq!(a.schedules, b.schedules);
    assert_eq!(a.pruned, b.pruned);
}

#[test]
fn model_panic_is_reported_with_schedule() {
    let err = explore(&cfg(), || {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || n2.store(1, Ordering::Relaxed));
        // wrong claim: holds only under schedules where the child ran first
        assert_eq!(n.load(Ordering::Relaxed), 1, "child must have stored");
        t.join();
    })
    .expect_err("the failing schedule must be found");
    match err {
        CheckError::Panic { schedule, .. } => assert!(!schedule.is_empty()),
        other => panic!("expected Panic, got: {other}"),
    }
}

#[test]
fn livelock_hits_step_limit() {
    let err = explore(
        &Config {
            max_steps: 500,
            ..cfg()
        },
        || {
            let flag = Arc::new(AtomicBool::new(false));
            // nobody ever sets the flag: this spin must not hang the checker
            while !flag.load(Ordering::Acquire) {}
        },
    )
    .expect_err("spin loop must be cut off");
    assert!(matches!(err, CheckError::StepLimit { .. }), "got: {err}");
}

#[test]
fn schedule_limit_fails_loudly() {
    let err = explore(
        &Config {
            max_schedules: 3,
            preemptions: 4,
            ..Config::default()
        },
        || {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        for _ in 0..4 {
                            n.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
        },
    )
    .expect_err("schedule cap must abort the search");
    assert!(
        matches!(err, CheckError::ScheduleLimit { .. }),
        "got: {err}"
    );
}
