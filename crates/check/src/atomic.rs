//! Instrumented stand-ins for `std::sync::atomic` types.
//!
//! Values are sequentially consistent (a load observes the latest
//! store of the explored interleaving); *synchronization* follows the
//! orderings: only a `Release` (or stronger) store read by an
//! `Acquire` (or stronger) load creates a happens-before edge, and
//! RMW operations extend the release sequence of the store they read
//! from. A too-weak ordering therefore never synchronizes — and the
//! cell accesses it was supposed to publish get flagged as races.

use crate::sched::{self, Obj, Op, OpKind, Shared};
use crate::vclock::VClock;
use std::sync::atomic::Ordering;

fn acquires(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn releases(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// Shared implementation over the raw `u64` representation.
#[derive(Debug)]
struct AtomicImpl {
    id: usize,
}

fn atomic_state(g: &mut Shared, id: usize) -> (&mut u64, &mut VClock) {
    match &mut g.objects[id] {
        Obj::Atomic { val, sync } => (val, sync),
        Obj::Cell { .. } => unreachable!("object {id} is not an atomic"),
    }
}

impl AtomicImpl {
    fn new(v: u64) -> Self {
        AtomicImpl {
            id: sched::register_object(Obj::Atomic {
                val: v,
                sync: VClock::default(),
            }),
        }
    }

    fn load(&self, ord: Ordering) -> u64 {
        assert!(
            !matches!(ord, Ordering::Release | Ordering::AcqRel),
            "load with a release ordering"
        );
        let op = Op {
            obj: Some(self.id),
            kind: OpKind::AtomicLoad(ord),
        };
        sched::schedule(op, |g, me| {
            let (val, sync) = atomic_state(g, self.id);
            let (val, sync) = (*val, sync.clone());
            if acquires(ord) {
                g.threads[me].clock.join(&sync);
            }
            val
        })
    }

    fn store(&self, v: u64, ord: Ordering) {
        assert!(
            !matches!(ord, Ordering::Acquire | Ordering::AcqRel),
            "store with an acquire ordering"
        );
        let op = Op {
            obj: Some(self.id),
            kind: OpKind::AtomicStore(ord),
        };
        sched::schedule(op, |g, me| {
            let clock = g.threads[me].clock.clone();
            let (val, sync) = atomic_state(g, self.id);
            *val = v;
            if releases(ord) {
                // this store heads a new release sequence
                *sync = clock;
            } else {
                // a relaxed store synchronizes with nothing
                sync.clear();
            }
        })
    }

    /// Read-modify-write with `f`; returns the previous value. An RMW
    /// reads from the previous store and *extends* its release
    /// sequence, so the existing message clock is preserved (and
    /// joined with ours when we release).
    fn rmw(&self, ord: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
        let op = Op {
            obj: Some(self.id),
            kind: OpKind::AtomicRmw(ord),
        };
        sched::schedule(op, |g, me| {
            let clock = g.threads[me].clock.clone();
            let (val, sync) = atomic_state(g, self.id);
            let prev = *val;
            *val = f(prev);
            if releases(ord) {
                sync.join(&clock);
            }
            let sync = sync.clone();
            if acquires(ord) {
                g.threads[me].clock.join(&sync);
            }
            prev
        })
    }

    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        assert!(
            !matches!(failure, Ordering::Release | Ordering::AcqRel),
            "compare_exchange failure ordering cannot release"
        );
        let op = Op {
            obj: Some(self.id),
            kind: OpKind::AtomicRmw(success),
        };
        sched::schedule(op, |g, me| {
            let clock = g.threads[me].clock.clone();
            let (val, sync) = atomic_state(g, self.id);
            let prev = *val;
            if prev == current {
                *val = new;
                if releases(success) {
                    sync.join(&clock);
                }
                let sync = sync.clone();
                if acquires(success) {
                    g.threads[me].clock.join(&sync);
                }
                Ok(prev)
            } else {
                let sync = sync.clone();
                if acquires(failure) {
                    g.threads[me].clock.join(&sync);
                }
                Err(prev)
            }
        })
    }
}

/// Instrumented `AtomicUsize` (API subset used by the workspace).
#[derive(Debug)]
pub struct AtomicUsize(AtomicImpl);

impl AtomicUsize {
    pub fn new(v: usize) -> Self {
        AtomicUsize(AtomicImpl::new(v as u64))
    }

    pub fn load(&self, ord: Ordering) -> usize {
        self.0.load(ord) as usize
    }

    pub fn store(&self, v: usize, ord: Ordering) {
        self.0.store(v as u64, ord)
    }

    pub fn swap(&self, v: usize, ord: Ordering) -> usize {
        self.0.rmw(ord, |_| v as u64) as usize
    }

    pub fn fetch_add(&self, v: usize, ord: Ordering) -> usize {
        self.0.rmw(ord, |x| x.wrapping_add(v as u64)) as usize
    }

    pub fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        self.0
            .compare_exchange(current as u64, new as u64, success, failure)
            .map(|v| v as usize)
            .map_err(|v| v as usize)
    }
}

/// Instrumented `AtomicBool` (API subset used by the workspace).
#[derive(Debug)]
pub struct AtomicBool(AtomicImpl);

impl AtomicBool {
    pub fn new(v: bool) -> Self {
        AtomicBool(AtomicImpl::new(v as u64))
    }

    pub fn load(&self, ord: Ordering) -> bool {
        self.0.load(ord) != 0
    }

    pub fn store(&self, v: bool, ord: Ordering) {
        self.0.store(v as u64, ord)
    }

    pub fn swap(&self, v: bool, ord: Ordering) -> bool {
        self.0.rmw(ord, |_| v as u64) != 0
    }

    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        self.0
            .compare_exchange(current as u64, new as u64, success, failure)
            .map(|v| v != 0)
            .map_err(|v| v != 0)
    }
}
