//! Instrumented `thread::spawn` / `JoinHandle`.
//!
//! Spawn and join are the structural happens-before edges of a model:
//! a child starts with its parent's clock at the spawn, and a join
//! folds the child's final clock into the joiner. Every model thread
//! is a real OS thread driven by the explorer's baton (see
//! [`crate::sched`]).

use crate::sched::{self, Op, OpKind, Tid};
use std::sync::{Arc, Mutex};

/// Handle to a spawned model thread.
pub struct JoinHandle<T> {
    tid: Tid,
    result: Arc<Mutex<Option<T>>>,
}

/// Spawns a model thread. Must be called from inside a model run.
///
/// The closure's result is returned by [`JoinHandle::join`]. Unlike
/// `std`, `join` panics (rather than returning `Err`) when the child
/// panicked — inside a model, a child panic is already a reported
/// failure, so rejoining it only needs to not deadlock.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let result = Arc::new(Mutex::new(None::<T>));
    let slot = Arc::clone(&result);
    let op = Op {
        obj: None,
        kind: OpKind::Spawn,
    };
    let child = sched::schedule(op, sched::register_child);
    sched::with_exec(|exec, _me| {
        let e2 = Arc::clone(exec);
        let handle = std::thread::spawn(move || {
            sched::model_thread_main(e2, child, move || {
                let value = f();
                *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
            })
        });
        exec.lock().os_handles.push(handle);
    });
    JoinHandle { tid: child, result }
}

impl<T> JoinHandle<T> {
    /// Blocks (in model time) until the thread finishes and returns
    /// its result. The join synchronizes: everything the child did
    /// happens before everything the joiner does next.
    pub fn join(self) -> T {
        let op = Op {
            obj: None,
            kind: OpKind::Join(self.tid),
        };
        let panicked = sched::schedule(op, |g, me| {
            let final_clock = g.threads[self.tid]
                .final_clock
                .clone()
                .expect("join granted before the target finished");
            g.threads[me].clock.join(&final_clock);
            g.threads[self.tid].panicked
        });
        if panicked {
            panic!("fec-check: joined model thread panicked");
        }
        self.result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("joined thread finished without a result")
    }
}
