//! Instrumented `UnsafeCell`: the race-detection tripwire.
//!
//! Every access goes through [`UnsafeCell::with`] (shared read) or
//! [`UnsafeCell::with_mut`] (exclusive write) — the loom idiom — and
//! is checked against the classic vector-clock discipline:
//!
//! - a **read** by thread `t` races unless every prior write happens
//!   before `t`'s current clock;
//! - a **write** by `t` races unless every prior read *and* write
//!   happens before `t`'s current clock.
//!
//! Because the explorer serializes all model threads, even a racy
//! model never performs a physical data race — the raw pointer handed
//! to the closure is always exclusively owned for the closure's
//! duration. Races are purely logical findings, reported through
//! [`crate::CheckError::Race`].

use crate::sched::{self, Obj, Op, OpKind, Shared};
use crate::vclock::VClock;

/// Instrumented replacement for `std::cell::UnsafeCell`.
#[derive(Debug)]
pub struct UnsafeCell<T> {
    id: usize,
    data: std::cell::UnsafeCell<T>,
}

// Safety: the cooperative scheduler runs at most one model thread at a
// time, and `with`/`with_mut` only lend the pointer for the closure's
// duration, so physical aliasing across threads never occurs. Logical
// races are *detected* dynamically through vector clocks instead of
// being prevented by the type system — the same stance loom takes.
unsafe impl<T: Send> Sync for UnsafeCell<T> {}

fn cell_clocks(g: &mut Shared, id: usize) -> (&mut VClock, &mut VClock) {
    match &mut g.objects[id] {
        Obj::Cell { reads, writes } => (reads, writes),
        Obj::Atomic { .. } => unreachable!("object {id} is not a cell"),
    }
}

impl<T> UnsafeCell<T> {
    pub fn new(data: T) -> Self {
        UnsafeCell {
            id: sched::register_object(Obj::Cell {
                reads: VClock::default(),
                writes: VClock::default(),
            }),
            data: std::cell::UnsafeCell::new(data),
        }
    }

    /// Immutable access. The pointer must not escape the closure.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        let op = Op {
            obj: Some(self.id),
            kind: OpKind::CellRead,
        };
        sched::schedule(op, |g, me| {
            let clock = g.threads[me].clock.clone();
            let (reads, writes) = cell_clocks(g, self.id);
            if writes.le(&clock) {
                reads.set(me, clock.get(me));
            } else {
                let msg = format!(
                    "UnsafeCell read by thread {me} is concurrent with a write (cell {})",
                    self.id
                );
                sched::report_race(g, msg);
            }
        });
        f(self.data.get())
    }

    /// Mutable access. The pointer must not escape the closure.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        let op = Op {
            obj: Some(self.id),
            kind: OpKind::CellWrite,
        };
        sched::schedule(op, |g, me| {
            let clock = g.threads[me].clock.clone();
            let (reads, writes) = cell_clocks(g, self.id);
            if writes.le(&clock) && reads.le(&clock) {
                writes.set(me, clock.get(me));
            } else {
                let msg = format!(
                    "UnsafeCell write by thread {me} is concurrent with another access (cell {})",
                    self.id
                );
                sched::report_race(g, msg);
            }
        });
        f(self.data.get())
    }
}
