//! Vector clocks: the happens-before backbone of race detection.
//!
//! Each model thread `t` carries a clock `C_t`; component `C_t[u]` is
//! the number of events of thread `u` known (directly or transitively)
//! to happen before `t`'s next event. Synchronizing operations —
//! `spawn`, `join`, and acquire loads that read a release store — join
//! clocks; every instrumented operation bumps the executing thread's
//! own component.

/// A grow-on-demand vector clock. Missing components read as zero, so
/// clocks over different thread counts compare naturally.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub(crate) struct VClock(Vec<u32>);

impl VClock {
    /// Component for thread `t` (zero when never touched).
    pub fn get(&self, t: usize) -> u32 {
        self.0.get(t).copied().unwrap_or(0)
    }

    /// Sets component `t`, growing the vector as needed.
    pub fn set(&mut self, t: usize, v: u32) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] = v;
    }

    /// Records one more event of thread `t`.
    pub fn bump(&mut self, t: usize) {
        self.set(t, self.get(t) + 1);
    }

    /// Component-wise maximum: afterwards `self` knows everything
    /// `other` knew.
    pub fn join(&mut self, other: &VClock) {
        for (t, &v) in other.0.iter().enumerate() {
            if v > self.get(t) {
                self.set(t, v);
            }
        }
    }

    /// Pointwise `self ≤ other`: every event recorded in `self` is also
    /// known to `other`, i.e. `self` happens before (or equals) the
    /// view `other`.
    pub fn le(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(t, &v)| v <= other.get(t))
    }

    /// Clears every component (used for the "synchronizes with nothing"
    /// message clock of a `Relaxed` store).
    pub fn clear(&mut self) {
        self.0.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_compare() {
        let mut a = VClock::default();
        let mut b = VClock::default();
        a.bump(0);
        a.bump(0);
        b.bump(1);
        assert!(!a.le(&b));
        assert!(!b.le(&a));
        let mut c = a.clone();
        c.join(&b);
        assert!(a.le(&c));
        assert!(b.le(&c));
        assert_eq!(c.get(0), 2);
        assert_eq!(c.get(1), 1);
    }

    #[test]
    fn empty_is_bottom() {
        let bot = VClock::default();
        let mut x = VClock::default();
        x.bump(3);
        assert!(bot.le(&x));
        assert!(bot.le(&bot));
        assert!(!x.le(&bot));
    }

    #[test]
    fn clear_resets_to_bottom() {
        let mut x = VClock::default();
        x.bump(0);
        x.clear();
        assert!(x.le(&VClock::default()));
    }
}
