//! Exhaustive bounded exploration of thread interleavings.
//!
//! The explorer runs the model closure over and over, driving a
//! depth-first search over scheduling decisions. A persistent stack of
//! choice points records, for each schedule prefix, which threads were
//! enabled and which option is currently being explored; each
//! execution replays the prefix and extends it until every model
//! thread finishes. Two prunings keep the tree tractable:
//!
//! - **Preemption bounding** — schedules are explored in order of how
//!   many times a runnable thread was forcibly switched away from
//!   (bounded by [`Config::preemptions`]). Context switches at a
//!   blocked or finished thread are free. Almost all concurrency bugs
//!   are exposed by very few preemptions (CHESS's empirical result),
//!   and vector-clock race detection needs only *one* schedule with
//!   the offending value flow, not the literal racy adjacency.
//! - **Sleep sets (DPOR-lite)** — after exploring thread `t` at a
//!   node, sibling branches put `t` to sleep until some executed
//!   operation is dependent with `t`'s pending one; schedules that
//!   merely commute independent operations are visited once.
//!
//! Determinism is required: the model must make the same sequence of
//! instrumented calls whenever the same schedule is replayed (no wall
//! clock, no OS randomness — the usual loom contract).

use crate::sched::{self, Exec, Failure, Op, OpKind, Shared, Status, Tid};
use std::fmt;
use std::sync::{Arc, MutexGuard};

/// Exploration limits.
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum forced context switches per schedule (see module docs).
    pub preemptions: usize,
    /// Hard cap on schedules (explored + pruned); exceeding it is an
    /// error so interleaving explosions fail loudly instead of hanging.
    pub max_schedules: usize,
    /// Hard cap on instrumented operations per execution (livelock
    /// guard for models that spin).
    pub max_steps: usize,
    /// Disable to measure how much pruning the sleep sets buy.
    pub sleep_sets: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemptions: 2,
            max_schedules: 100_000,
            max_steps: 20_000,
            sleep_sets: true,
        }
    }
}

/// Summary of a completed (race-free) exploration.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Schedules run to completion.
    pub schedules: usize,
    /// Schedule prefixes abandoned by sleep-set pruning.
    pub pruned: usize,
}

/// A failed exploration. `schedule` is the sequence of thread ids
/// granted at each scheduling point, enough to replay the failure by
/// hand.
#[derive(Clone, Debug)]
pub enum CheckError {
    /// A data race: two unsynchronized accesses to the same
    /// [`crate::cell::UnsafeCell`], at least one of them a write.
    Race { message: String, schedule: Vec<Tid> },
    /// The model panicked (e.g. an assertion about a functional
    /// property failed under this schedule).
    Panic { message: String, schedule: Vec<Tid> },
    /// Every unfinished thread is blocked on `join`.
    Deadlock { schedule: Vec<Tid> },
    /// One execution exceeded [`Config::max_steps`].
    StepLimit { schedule: Vec<Tid> },
    /// The search exceeded [`Config::max_schedules`].
    ScheduleLimit { explored: usize },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Race { message, schedule } => {
                write!(f, "data race: {message} (schedule {schedule:?})")
            }
            CheckError::Panic { message, schedule } => {
                write!(f, "model panicked: {message} (schedule {schedule:?})")
            }
            CheckError::Deadlock { schedule } => {
                write!(f, "deadlock: all threads blocked (schedule {schedule:?})")
            }
            CheckError::StepLimit { schedule } => {
                write!(f, "step limit exceeded — livelock? (schedule {schedule:?})")
            }
            CheckError::ScheduleLimit { explored } => {
                write!(f, "schedule limit exceeded after {explored} schedules")
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// One node of the persistent DFS stack: the scheduling options chosen
/// to explore at this depth, and which is current.
struct Node {
    options: Vec<Tid>,
    index: usize,
}

enum RunOutcome {
    /// All threads finished; a full schedule was explored.
    Complete,
    /// Abandoned: every non-sleeping option was pruned.
    Pruned,
}

/// Explores every schedule of `model` within `config`'s bounds.
/// Returns the exploration summary, or the first failure found.
pub fn explore(
    config: &Config,
    model: impl Fn() + Send + Sync + 'static,
) -> Result<Report, CheckError> {
    let model = Arc::new(model);
    let mut stack: Vec<Node> = Vec::new();
    let mut schedules = 0usize;
    let mut pruned = 0usize;
    loop {
        if schedules + pruned >= config.max_schedules {
            return Err(CheckError::ScheduleLimit {
                explored: schedules,
            });
        }
        match run_once(config, Arc::clone(&model), &mut stack)? {
            RunOutcome::Complete => schedules += 1,
            RunOutcome::Pruned => pruned += 1,
        }
        // advance the DFS to the next unexplored branch
        loop {
            match stack.last_mut() {
                None => return Ok(Report { schedules, pruned }),
                Some(top) => {
                    top.index += 1;
                    if top.index < top.options.len() {
                        break;
                    }
                    stack.pop();
                }
            }
        }
    }
}

/// Explores with the default [`Config`], panicking on any failure —
/// the drop-in `loom::model` replacement for tests.
pub fn check(model: impl Fn() + Send + Sync + 'static) {
    if let Err(e) = explore(&Config::default(), model) {
        panic!("fec-check: {e}");
    }
}

/// Waits until no thread holds the baton and none is starting up or
/// running user code: every thread is parked at a point or finished.
fn wait_quiescent(exec: &Exec) -> MutexGuard<'_, Shared> {
    let mut g = exec.lock();
    loop {
        let busy = g.active.is_some()
            || g.threads
                .iter()
                .any(|t| matches!(t.status, Status::Starting | Status::Running));
        if !busy {
            return g;
        }
        g = exec.cv.wait(g).unwrap_or_else(|e| e.into_inner());
    }
}

/// Declared op of a parked thread.
fn op_of(g: &Shared, t: Tid) -> Op {
    match g.threads[t].status {
        Status::AtPoint(op) => op,
        _ => unreachable!("op_of on a thread that is not parked"),
    }
}

/// A parked thread is enabled unless it waits on an unfinished join.
fn is_enabled(g: &Shared, t: Tid) -> bool {
    match op_of(g, t).kind {
        OpKind::Join(target) => g.threads[target].status == Status::Finished,
        _ => true,
    }
}

/// Sets the abort flag and waits until every model thread has unwound,
/// then reaps the OS handles.
fn abort_and_reap(exec: &Exec, mut g: MutexGuard<'_, Shared>) {
    g.abort = true;
    g.active = None;
    exec.cv.notify_all();
    loop {
        if g.threads.iter().all(|t| t.status == Status::Finished) {
            break;
        }
        g = exec.cv.wait(g).unwrap_or_else(|e| e.into_inner());
    }
    let handles = std::mem::take(&mut g.os_handles);
    drop(g);
    for h in handles {
        let _ = h.join();
    }
}

/// Reaps OS handles after a naturally completed execution.
fn reap(exec: &Exec) {
    let handles = std::mem::take(&mut exec.lock().os_handles);
    for h in handles {
        let _ = h.join();
    }
}

fn failure_to_error(failure: Failure, schedule: Vec<Tid>) -> CheckError {
    match failure {
        Failure::Race(message) => CheckError::Race { message, schedule },
        Failure::Panic(message) => CheckError::Panic { message, schedule },
        Failure::StepLimit => CheckError::StepLimit { schedule },
    }
}

/// Runs one execution: replays the stack's current prefix, then
/// extends it with fresh choice points until the model finishes, a
/// failure surfaces, or pruning abandons the branch.
fn run_once(
    config: &Config,
    model: Arc<impl Fn() + Send + Sync + 'static>,
    stack: &mut Vec<Node>,
) -> Result<RunOutcome, CheckError> {
    let exec = Arc::new(Exec::new(config.max_steps));
    {
        let mut g = exec.lock();
        g.threads.push(crate::sched::new_root_thread());
        let e2 = Arc::clone(&exec);
        let handle = std::thread::spawn(move || sched::model_thread_main(e2, 0, move || model()));
        g.os_handles.push(handle);
    }

    let mut depth = 0usize;
    // DFS bookkeeping recomputed identically on every replay
    let mut sleep: Vec<Tid> = Vec::new();
    let mut prev: Option<Tid> = None;
    let mut preemptions = 0usize;

    loop {
        let g = wait_quiescent(&exec);
        if let Some(failure) = g.failure.clone() {
            let schedule = g.trace.clone();
            abort_and_reap(&exec, g);
            return Err(failure_to_error(failure, schedule));
        }
        let unfinished = g.threads.iter().any(|t| t.status != Status::Finished);
        if !unfinished {
            drop(g);
            reap(&exec);
            return Ok(RunOutcome::Complete);
        }
        let enabled: Vec<Tid> = (0..g.threads.len())
            .filter(|&t| matches!(g.threads[t].status, Status::AtPoint(_)) && is_enabled(&g, t))
            .collect();
        if enabled.is_empty() {
            let schedule = g.trace.clone();
            abort_and_reap(&exec, g);
            return Err(CheckError::Deadlock { schedule });
        }

        if depth == stack.len() {
            // fresh choice point: filter by sleep set, then by the
            // preemption budget (once spent, the previously running
            // thread must continue while it stays enabled)
            let mut options: Vec<Tid> = enabled
                .iter()
                .copied()
                .filter(|t| !sleep.contains(t))
                .collect();
            if preemptions >= config.preemptions {
                if let Some(p) = prev {
                    if enabled.contains(&p) {
                        options.retain(|&t| t == p);
                    }
                }
            }
            if options.is_empty() {
                // every enabled thread is asleep here: this prefix only
                // leads to schedules equivalent to ones explored via a
                // sibling — abandon it
                abort_and_reap(&exec, g);
                return Ok(RunOutcome::Pruned);
            }
            stack.push(Node { options, index: 0 });
        }
        let node = &stack[depth];
        let choice = node.options[node.index];
        debug_assert!(
            enabled.contains(&choice),
            "replay divergence: model is nondeterministic"
        );
        let chosen_op = op_of(&g, choice);

        // sleep-set propagation: siblings explored before the current
        // option go to sleep; executing a dependent operation wakes a
        // sleeper up (by dropping it from the set)
        if config.sleep_sets {
            let mut next_sleep: Vec<Tid> = Vec::new();
            for &u in sleep.iter().chain(node.options[..node.index].iter()) {
                if u == choice || next_sleep.contains(&u) {
                    continue;
                }
                if let Status::AtPoint(op_u) = g.threads[u].status {
                    if !Op::dependent(&op_u, &chosen_op) {
                        next_sleep.push(u);
                    }
                }
            }
            sleep = next_sleep;
        }
        if let Some(p) = prev {
            if choice != p && enabled.contains(&p) {
                preemptions += 1;
            }
        }
        prev = Some(choice);

        // hand the baton over
        let mut g = g;
        g.trace.push(choice);
        g.active = Some(choice);
        exec.cv.notify_all();
        drop(g);
        depth += 1;
    }
}
