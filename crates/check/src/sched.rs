//! The execution runtime: cooperative scheduling of model threads.
//!
//! Every model thread is a real OS thread, but at most one runs at a
//! time: before each instrumented operation (atomic access, cell
//! access, spawn, join) the thread parks at a *schedule point* and
//! waits for the explorer to grant it the baton. The explorer (on the
//! test thread) waits until every thread is parked or finished, picks
//! the next thread according to its depth-first search over schedules,
//! and hands the baton over. Because only one thread ever executes
//! user code at a time, even a *racy* model never performs a physical
//! data race — races are detected logically, through vector clocks.
//!
//! The memory model implemented here is "sequentially consistent
//! values, C11-style synchronization": an atomic load always observes
//! the latest store in the interleaving (no store buffering), but
//! happens-before edges are created **only** by Release stores read by
//! Acquire loads (plus spawn/join). Data-race detection on
//! [`crate::cell::UnsafeCell`] uses those edges exclusively, so a
//! publication protocol whose fence is too weak (`Relaxed` where
//! `Release`/`Acquire` is required) is flagged on every schedule where
//! the un-synchronized value flow actually happens — exactly the bugs
//! weak-memory hardware or compiler reordering would expose.

use crate::vclock::VClock;
use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

pub(crate) type Tid = usize;

/// What a thread is about to do at its current schedule point. Used
/// for enabledness (join), for dependence-aware sleep-set pruning, and
/// for race reports.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum OpKind {
    /// First event of a thread (parks until the explorer starts it).
    Start,
    /// Registration of a child thread.
    Spawn,
    /// Wait for thread `.0` to finish; enabled only once it has.
    Join(Tid),
    AtomicLoad(Ordering),
    AtomicStore(Ordering),
    /// Read-modify-write (`fetch_add`, `swap`, `compare_exchange`).
    AtomicRmw(Ordering),
    CellRead,
    CellWrite,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct Op {
    /// Object acted on (`None` for thread lifecycle events).
    pub obj: Option<usize>,
    pub kind: OpKind,
}

impl Op {
    fn is_write(&self) -> bool {
        matches!(
            self.kind,
            OpKind::AtomicStore(_) | OpKind::AtomicRmw(_) | OpKind::CellWrite
        )
    }

    /// Mazurkiewicz dependence: two operations commute (may be
    /// reordered without changing the outcome) unless they touch the
    /// same object and at least one writes it. Lifecycle events are
    /// conservatively dependent on everything — they carry
    /// happens-before edges.
    pub fn dependent(a: &Op, b: &Op) -> bool {
        match (a.obj, b.obj) {
            (Some(x), Some(y)) => x == y && (a.is_write() || b.is_write()),
            _ => true,
        }
    }
}

#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) enum Status {
    /// Registered; its OS thread has not yet parked at `Start`.
    Starting,
    /// Holds the baton and is executing user code.
    Running,
    /// Parked at a schedule point, next operation declared.
    AtPoint(Op),
    /// The closure returned, panicked, or unwound on abort.
    Finished,
}

pub(crate) struct ThreadState {
    pub status: Status,
    pub clock: VClock,
    /// Clock at termination; joined into the joiner's clock.
    pub final_clock: Option<VClock>,
    pub panicked: bool,
}

impl ThreadState {
    fn new(clock: VClock) -> Self {
        ThreadState {
            status: Status::Starting,
            clock,
            final_clock: None,
            panicked: false,
        }
    }
}

/// Per-object instrumentation state. Values of atomics live here (the
/// interleaving is explored sequentially, so a plain field suffices);
/// values of cells live in the shim's real memory — only access clocks
/// are tracked.
pub(crate) enum Obj {
    Atomic {
        val: u64,
        /// Message clock of the release sequence headed by the latest
        /// release store: what an acquire load of the current value
        /// synchronizes with. Cleared by a `Relaxed` store (which
        /// heads no release sequence), preserved by `Relaxed` RMWs
        /// (which extend the sequence).
        sync: VClock,
    },
    Cell {
        /// reads[t] = t's clock component at its last read.
        reads: VClock,
        /// writes[t] = t's clock component at its last write.
        writes: VClock,
    },
}

/// Why an execution was declared failed (first failure wins).
#[derive(Clone, Debug)]
pub(crate) enum Failure {
    Race(String),
    Panic(String),
    StepLimit,
}

pub(crate) struct Shared {
    pub threads: Vec<ThreadState>,
    pub objects: Vec<Obj>,
    /// Baton holder. Set by the explorer when granting; cleared by the
    /// thread when it parks at its next point or finishes.
    pub active: Option<Tid>,
    /// When set, every parked thread unwinds instead of proceeding.
    pub abort: bool,
    pub failure: Option<Failure>,
    /// Instrumented operations executed so far (livelock guard).
    pub steps: usize,
    pub max_steps: usize,
    /// The schedule executed so far: thread granted at each point.
    pub trace: Vec<Tid>,
    /// OS handles of every model thread, reaped at execution end.
    pub os_handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Exec {
    pub mx: Mutex<Shared>,
    pub cv: Condvar,
}

impl Exec {
    pub fn new(max_steps: usize) -> Self {
        Exec {
            mx: Mutex::new(Shared {
                threads: Vec::new(),
                objects: Vec::new(),
                active: None,
                abort: false,
                failure: None,
                steps: 0,
                max_steps,
                trace: Vec::new(),
                os_handles: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Locks the shared state, shrugging off poisoning (a panicking
    /// model thread is an expected, handled event).
    pub fn lock(&self) -> MutexGuard<'_, Shared> {
        self.mx.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wait<'a>(&self, g: MutexGuard<'a, Shared>) -> MutexGuard<'a, Shared> {
        self.cv.wait(g).unwrap_or_else(|e| e.into_inner())
    }
}

thread_local! {
    /// The execution this OS thread belongs to, if it is a model
    /// thread (set for the closure's whole lifetime).
    static CURRENT: RefCell<Option<(Arc<Exec>, Tid)>> = const { RefCell::new(None) };
}

/// Zero-sized panic payload used to unwind model threads when the
/// explorer abandons an execution (prune, failure, step limit). Caught
/// at the thread's top level; never surfaces to the user.
struct AbortToken;

fn resume_abort() -> ! {
    panic::resume_unwind(Box::new(AbortToken))
}

pub(crate) fn with_exec<R>(f: impl FnOnce(&Arc<Exec>, Tid) -> R) -> R {
    CURRENT.with(|c| {
        let b = c.borrow();
        let (exec, tid) = b.as_ref().expect(
            "fec-check shim used outside a model: wrap the test body in fec_check::check / explore",
        );
        f(exec, *tid)
    })
}

/// Registers a fresh instrumented object (no schedule point: creation
/// is thread-local until the object is published, and publication
/// itself — spawn or an atomic — carries the happens-before edge).
pub(crate) fn register_object(obj: Obj) -> usize {
    with_exec(|exec, _| {
        let mut g = exec.lock();
        g.objects.push(obj);
        g.objects.len() - 1
    })
}

/// The heart of every shim: park at a schedule point declaring `op`,
/// wait for the baton, then perform `apply` on the shared state (clock
/// updates, value updates, race checks) and continue running.
pub(crate) fn schedule<R>(op: Op, apply: impl FnOnce(&mut Shared, Tid) -> R) -> R {
    with_exec(|exec, me| {
        let mut g = exec.lock();
        g.threads[me].status = Status::AtPoint(op);
        g.active = None;
        exec.cv.notify_all();
        loop {
            if g.abort {
                drop(g);
                resume_abort();
            }
            if g.active == Some(me) {
                break;
            }
            g = exec.wait(g);
        }
        g.threads[me].status = Status::Running;
        g.steps += 1;
        if g.steps > g.max_steps {
            g.failure.get_or_insert(Failure::StepLimit);
            g.abort = true;
            exec.cv.notify_all();
            drop(g);
            resume_abort();
        }
        // the operation is an event of `me`
        g.threads[me].clock.bump(me);
        apply(&mut g, me)
    })
}

/// Records the first race found and aborts the execution. Called from
/// inside an `apply` closure; the calling thread keeps running until
/// its next schedule point, where it unwinds.
pub(crate) fn report_race(g: &mut Shared, msg: String) {
    g.failure.get_or_insert(Failure::Race(msg));
    g.abort = true;
}

/// Body wrapper for every model OS thread: binds the thread-local
/// context, parks at `Start` until the explorer schedules the thread's
/// first step, runs the closure, and records termination.
pub(crate) fn model_thread_main(exec: Arc<Exec>, me: Tid, body: impl FnOnce()) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), me)));
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        schedule(
            Op {
                obj: None,
                kind: OpKind::Start,
            },
            |_, _| {},
        );
        body();
    }));
    let mut g = exec.lock();
    match result {
        Ok(()) => {}
        Err(payload) => {
            if !payload.is::<AbortToken>() {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "model thread panicked".to_string());
                g.threads[me].panicked = true;
                g.failure.get_or_insert(Failure::Panic(msg));
            }
        }
    }
    let final_clock = g.threads[me].clock.clone();
    g.threads[me].final_clock = Some(final_clock);
    g.threads[me].status = Status::Finished;
    g.active = None;
    exec.cv.notify_all();
    drop(g);
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Registers a child thread from inside a running parent (called by
/// the spawn shim within its `apply`): the child inherits the parent's
/// clock — everything the parent did up to and including the spawn
/// happens before everything the child will do.
pub(crate) fn register_child(g: &mut Shared, parent: Tid) -> Tid {
    let clock = g.threads[parent].clock.clone();
    g.threads.push(ThreadState::new(clock));
    g.threads.len() - 1
}

/// State for the root model thread (tid 0) of a fresh execution.
pub(crate) fn new_root_thread() -> ThreadState {
    ThreadState::new(VClock::default())
}
