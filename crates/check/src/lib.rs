//! `fec-check` — a from-scratch, dependency-free deterministic
//! concurrency model checker in the spirit of
//! [loom](https://github.com/tokio-rs/loom).
//!
//! The workspace's parallel portfolio rests on hand-written lock-free
//! code (`fec-portfolio`'s SPSC clause-sharing ring and its
//! first-to-finish winner election). The paper's whole premise is
//! machine-checked trust in synthesized artifacts; this crate extends
//! that standard to our own concurrent runtime: instead of hoping the
//! example-based tests happened to hit the bad interleaving, the
//! checker *enumerates* interleavings.
//!
//! # How it works
//!
//! A model is a closure that uses the shim types in this crate instead
//! of the `std` originals:
//!
//! - [`sync::atomic::AtomicBool`] / [`sync::atomic::AtomicUsize`] —
//!   atomics whose `Ordering` is modeled: only `Release`-store →
//!   `Acquire`-load pairs (and RMW release sequences) create
//!   happens-before edges;
//! - [`cell::UnsafeCell`] — data accesses, checked for races with
//!   vector clocks;
//! - [`thread::spawn`] / [`thread::JoinHandle::join`] — structural
//!   happens-before edges.
//!
//! [`check`] (or [`explore`] with an explicit [`Config`]) runs the
//! closure under every schedule up to a preemption bound, with
//! sleep-set (DPOR-lite) pruning of equivalent interleavings, and
//! reports the first data race, panic, deadlock, or livelock along
//! with the schedule that produced it.
//!
//! ```
//! use fec_check::{check, cell::UnsafeCell, sync::atomic::{AtomicBool, Ordering}, thread};
//! use std::sync::Arc;
//!
//! check(|| {
//!     let data = Arc::new(UnsafeCell::new(0u32));
//!     let ready = Arc::new(AtomicBool::new(false));
//!     let (d, r) = (Arc::clone(&data), Arc::clone(&ready));
//!     let t = thread::spawn(move || {
//!         d.with_mut(|p| unsafe { *p = 42 });
//!         r.store(true, Ordering::Release); // downgrade to Relaxed ⇒ race
//!     });
//!     if ready.load(Ordering::Acquire) {
//!         let v = data.with(|p| unsafe { *p });
//!         assert_eq!(v, 42);
//!     }
//!     t.join();
//! });
//! ```
//!
//! # What the model means
//!
//! Values are sequentially consistent — an atomic load always observes
//! the latest store in the explored interleaving — but
//! *synchronization* follows the declared orderings. This is the same
//! simplification loom makes: it cannot exhibit stale *values* for
//! `Relaxed` loads, but it catches every publication protocol whose
//! fences are too weak, because the unsynchronized `UnsafeCell` access
//! is flagged by the vector clocks regardless of the values observed.
//!
//! Determinism contract: a model must make the same instrumented calls
//! under a replayed schedule (no wall clock, no ambient randomness).

#![deny(unsafe_op_in_unsafe_fn)]

mod atomic;
mod explore;
mod sched;
mod vclock;

pub mod cell;
pub mod thread;

/// Shim mirror of `std::sync` (the subset the workspace uses).
pub mod sync {
    pub use std::sync::Arc;

    /// Shim mirror of `std::sync::atomic`.
    pub mod atomic {
        pub use crate::atomic::{AtomicBool, AtomicUsize};
        pub use std::sync::atomic::Ordering;
    }
}

pub use explore::{check, explore, CheckError, Config, Report};
