//! Surviving burst errors: interleaving + single-bit-correcting FEC.
//!
//! Optical and wireless links fail in bursts, not independent bits.
//! A Hamming code corrects one bit per block — useless against an
//! 8-bit burst — unless an interleaver first spreads the burst across
//! blocks so each receives at most one flip. This example runs a
//! Gilbert–Elliott bursty channel against both configurations.
//!
//! ```text
//! cargo run --release --example burst_protection
//! ```

use fec_workbench::channel::burst::{BlockInterleaver, GeState, GilbertElliott};
use fec_workbench::gf2::BitVec;
use fec_workbench::hamming::{standards, CheckOutcome};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let code = standards::shortened_hamming(26, 5).unwrap(); // (31,26), corrects 1 bit
    let rows = 16; // codewords per interleave block
    let il = BlockInterleaver::new(rows, code.codeword_len());
    let ge = GilbertElliott::bursty();
    let mut rng = SmallRng::seed_from_u64(0xB1A57);
    let frames = 2_000;

    println!(
        "(31,26) Hamming over a bursty channel (avg BER {:.1e}), {} codewords per frame",
        ge.average_ber(),
        rows
    );

    let mut plain_bad = 0u64;
    let mut interleaved_bad = 0u64;
    for _ in 0..frames {
        // encode `rows` random data blocks
        let blocks: Vec<BitVec> = (0..rows)
            .map(|_| {
                let mut d = BitVec::zeros(26);
                for i in 0..26 {
                    if rng.random::<bool>() {
                        d.set(i, true);
                    }
                }
                code.encode(&d)
            })
            .collect();
        // one contiguous frame, row-major
        let mut frame = BitVec::zeros(il.len());
        for (r, b) in blocks.iter().enumerate() {
            for i in 0..b.len() {
                frame.set(r * code.codeword_len() + i, b.get(i));
            }
        }

        for interleaved in [false, true] {
            let mut wire = if interleaved {
                il.interleave(&frame)
            } else {
                frame.clone()
            };
            let mut state = GeState::Good;
            ge.transmit(&mut rng, &mut state, &mut wire);
            let received = if interleaved {
                il.deinterleave(&wire)
            } else {
                wire
            };
            // per-block correction
            let mut frame_bad = false;
            for (r, clean) in blocks.iter().enumerate() {
                let mut w = received.slice(r * code.codeword_len()..(r + 1) * code.codeword_len());
                if let CheckOutcome::SingleError { position } = code.check(&w) {
                    w.flip(position);
                }
                if &w != clean {
                    frame_bad = true;
                }
            }
            if frame_bad {
                if interleaved {
                    interleaved_bad += 1;
                } else {
                    plain_bad += 1;
                }
            }
        }
    }

    let p = plain_bad as f64 / frames as f64;
    let i = interleaved_bad as f64 / frames as f64;
    println!("frame error rate without interleaving: {p:.4}");
    println!("frame error rate with interleaving:    {i:.4}");
    println!(
        "interleaving gain: {:.1}× (bursts land ≤ 1 bit per codeword, \
         inside the code's correction radius)",
        p / i.max(1.0 / frames as f64)
    );
    assert!(
        interleaved_bad * 2 < plain_bad,
        "interleaving should at least halve burst-induced frame errors"
    );
}
