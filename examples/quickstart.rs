//! Quickstart: specify a code, synthesize it, use it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fec_workbench::gf2::BitVec;
use fec_workbench::hamming::CheckOutcome;
use fec_workbench::synth::cegis::{SynthesisConfig, Synthesizer};
use fec_workbench::synth::spec::parse_property;

fn main() {
    // 1. Describe the code you want in the paper's property language:
    //    4 data bits, at most 4 check bits, minimum distance 3, and as
    //    few check bits as possible (§3.1's running example).
    let spec = "len_G = 1 && len_d(G0) = 4 && len_c(G0) <= 4 \
                && md(G0) = 3 && minimal(len_c(G0))";
    let prop = parse_property(spec).expect("valid property");

    // 2. Run the CEGIS synthesizer (Algorithm 1).
    let result = Synthesizer::new(SynthesisConfig::default())
        .run(&prop)
        .expect("a (7,4)-shaped code exists");
    let code = &result.generators[0];
    println!(
        "synthesized a ({}, {}) code in {} iterations ({:?}):\n{}\n",
        code.codeword_len(),
        code.data_len(),
        result.iterations,
        result.elapsed,
        code
    );

    // 3. Encode a data word.
    let data = BitVec::from_bitstring("1011").unwrap();
    let word = code.encode(&data);
    println!("data {data}  →  codeword {word}");

    // 4. Corrupt one bit in transit …
    let mut received = word.clone();
    received.flip(5);
    println!("received (bit 5 flipped): {received}");

    // 5. … and the receiver detects and repairs it.
    match code.check(&received) {
        CheckOutcome::SingleError { position } => {
            println!("single-bit error located at position {position}");
            let repaired = code.correct(&received).unwrap();
            assert_eq!(repaired, word);
            assert_eq!(code.extract_data(&repaired), data);
            println!("repaired: {repaired} ✓");
        }
        other => panic!("unexpected outcome {other:?}"),
    }
}
