//! Application-specific FEC for float32 telemetry (§4.3's scenario).
//!
//! A distributed ML or scientific-computing job streams float32
//! gradients/samples over a noisy link and tolerates *small* numeric
//! error but not large one. This example synthesizes the
//! float-specific ensemble from per-bit criticality weights and
//! compares it against uniform parity protection on a simulated
//! channel.
//!
//! ```text
//! cargo run --release --example float_telemetry [--trials=N]
//! ```

use fec_workbench::channel::experiment::float32_trial;
use fec_workbench::channel::floatbits::PAPER_FLOAT32_UPPER_WEIGHTS_MSB_FIRST;
use fec_workbench::hamming::{standards, CompositeCode};
use fec_workbench::synth::cegis::SynthesisConfig;
use fec_workbench::synth::weights::{synthesize_weighted, WeightedGenSpec, WeightedProblem};

fn main() {
    let trials: u64 = std::env::args()
        .find_map(|a| a.strip_prefix("--trials=").map(str::to_string))
        .and_then(|v| v.parse().ok())
        .unwrap_or(500_000);

    // 1. Weighted synthesis: protect the bits whose corruption hurts
    //    most (the Fig. 1 profile, quantized as in §4.3).
    let problem = WeightedProblem {
        weights: PAPER_FLOAT32_UPPER_WEIGHTS_MSB_FIRST
            .iter()
            .rev()
            .copied()
            .collect(),
        gens: vec![
            WeightedGenSpec {
                check_len: 5,
                min_distance: 3,
            },
            WeightedGenSpec {
                check_len: 1,
                min_distance: 2,
            },
        ],
        bit_error_rate: 0.1,
        initial_bound: 1000.0,
    };
    let synthesized =
        synthesize_weighted(&problem, &SynthesisConfig::default()).expect("weighted synthesis");
    let strong_bits = synthesized.map.iter().filter(|&&g| g == 0).count();
    println!(
        "synthesizer chose: strong md-3 code on the top {strong_bits} bits, \
         parity on the next {}, sum_w = {:.2}",
        16 - strong_bits,
        synthesized.sum_w
    );

    // 2. Assemble both schemes over the full 32-bit float.
    let float_specific = CompositeCode::contiguous_msb_first(vec![
        synthesized.generators[0].clone(),
        synthesized.generators[1].clone(),
        standards::parity_code(16), // mantissa tail: cheapest possible
    ])
    .unwrap();
    let uniform_parity = CompositeCode::contiguous_msb_first(vec![
        standards::parity_code(16),
        standards::parity_code(16),
    ])
    .unwrap();

    // 3. Simulate both on the same channel.
    println!("\nsimulating {trials} numeric float32 words at p = 0.1 …");
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let rs = float32_trial(&float_specific, 0.1, trials, 0xF10A7, threads);
    let rp = float32_trial(&uniform_parity, 0.1, trials, 0xF10A7, threads);

    println!(
        "\n{:<26} {:>6} {:>12} {:>12} {:>9}",
        "scheme", "check", "undetected", "avg |err|", "non-num"
    );
    for (name, code, r) in [
        ("float-specific", &float_specific, &rs),
        ("uniform parity", &uniform_parity, &rp),
    ] {
        println!(
            "{:<26} {:>6} {:>12} {:>12.2e} {:>9}",
            format!("{name} ({code})"),
            code.check_len(),
            r.undetected,
            r.avg_error_magnitude(),
            r.non_numeric
        );
    }
    let gain = rp.avg_error_magnitude() / rs.avg_error_magnitude().max(f64::MIN_POSITIVE);
    println!(
        "\nthe float-specific code cuts the average undetected error magnitude \
         by {gain:.1}× for {} extra check bits",
        float_specific.check_len() - uniform_parity.check_len()
    );
    assert!(
        rs.avg_error_magnitude() < rp.avg_error_magnitude(),
        "the weighted code must reduce error magnitude"
    );
}
