//! Verify and exercise the 802.3df-shape (128,120) inner FEC code.
//!
//! The scenario from the paper's introduction: 400/800G Ethernet
//! attaches an 8-bit Hamming check to every 120-bit block. This
//! example (a) formally verifies the code's minimum distance with the
//! SAT-backed verifier — the §4.1 experiment — and (b) pushes a frame
//! through block encoding, single-bit corruption, and repair.
//!
//! ```text
//! cargo run --release --example verify_ethernet
//! ```

use fec_workbench::gf2::BitVec;
use fec_workbench::hamming::{standards, CheckOutcome};
use fec_workbench::smt::Budget;
use fec_workbench::synth::verify::{verify_min_distance_exact, VerifyOutcome};

fn main() {
    let code = standards::ieee_8023df_128_120();

    // (a) formal verification, as in §4.1
    let (outcome, stats) = verify_min_distance_exact(&code, 3, Budget::unlimited());
    assert_eq!(outcome, VerifyOutcome::Holds);
    println!(
        "verified: the (128,120) code has minimum distance exactly 3 \
         ({:.2} s, {} conflicts)",
        stats.elapsed.as_secs_f64(),
        stats.conflicts
    );

    // (b) frame pipeline: chop a payload into 120-bit blocks
    let payload: Vec<u8> = (0u8..60).map(|i| i.wrapping_mul(37) ^ 0x5A).collect();
    let mut bits = BitVec::zeros(payload.len() * 8);
    for (i, &b) in payload.iter().enumerate() {
        for j in 0..8 {
            bits.set(i * 8 + j, (b >> j) & 1 == 1);
        }
    }
    let blocks: Vec<BitVec> = (0..bits.len() / 120)
        .map(|i| bits.slice(i * 120..(i + 1) * 120))
        .collect();
    println!(
        "frame: {} bytes → {} blocks of 120 bits",
        payload.len(),
        blocks.len()
    );

    let mut repaired_blocks = Vec::new();
    for (i, block) in blocks.iter().enumerate() {
        let mut word = code.encode(block);
        // corrupt one deterministic bit per block
        let victim = (i * 37) % word.len();
        word.flip(victim);
        match code.check(&word) {
            CheckOutcome::SingleError { position } => {
                assert_eq!(position, victim);
                word.flip(position);
                repaired_blocks.push(code.extract_data(&word));
            }
            other => panic!("block {i}: unexpected {other:?}"),
        }
    }
    assert_eq!(repaired_blocks, blocks);
    println!(
        "all {} blocks corrupted by one bit each and repaired ✓",
        blocks.len()
    );

    // overhead accounting: 8 check bits per 120 data bits
    println!(
        "FEC overhead: {:.2}% ({} check bits per {}-bit block)",
        100.0 * code.check_len() as f64 / code.data_len() as f64,
        code.check_len(),
        code.data_len()
    );
}
