//! Synthesis → optimization → code generation, end to end (§4.4).
//!
//! Synthesizes a (24,16) md-3 code while minimizing the number of set
//! coefficient bits, then emits a specialized C encoder, and drives
//! the runtime mask kernel at line rate.
//!
//! ```text
//! cargo run --release --example codegen_pipeline
//! ```

use fec_workbench::codegen::{emit_c, emit_rust, MaskKernel, SparseKernel};
use fec_workbench::synth::cegis::{SynthesisConfig, Synthesizer};
use fec_workbench::synth::spec::parse_property;
use std::time::Instant;

fn main() {
    // synthesize with the len_1-minimization objective
    let prop =
        parse_property("len_d(G0) = 16 && len_c(G0) = 8 && md(G0) = 3 && minimal(len_1(G0))")
            .unwrap();
    let result = Synthesizer::new(SynthesisConfig::default())
        .run(&prop)
        .expect("synthesis");
    let g = &result.generators[0];
    println!(
        "optimized generator: ({}, {}) code with {} coefficient ones \
         ({} intermediate optima along the way)",
        g.codeword_len(),
        g.data_len(),
        g.coefficient_ones(),
        result.intermediates.len()
    );
    // md-3 needs ≥ 2 ones per row: the optimizer must reach the floor
    assert_eq!(g.coefficient_ones(), 2 * g.data_len());

    // emit sources
    println!("\n--- generated C (excerpt) ---");
    let c_src = emit_c(g, false);
    for line in c_src.lines().take(10) {
        println!("{line}");
    }
    println!("… ({} lines total)", c_src.lines().count());
    println!("\n--- generated Rust (excerpt) ---");
    for line in emit_rust(g).lines().take(6) {
        println!("{line}");
    }

    // drive the runtime kernels
    let mask = MaskKernel::new(g);
    let sparse = SparseKernel::new(g);
    let words = 2_000_000u64;
    let t = Instant::now();
    let mut acc = 0u64;
    for d in 0..words {
        acc = acc.wrapping_add(mask.encode_checks(d & 0xFFFF));
    }
    let dt = t.elapsed();
    std::hint::black_box(acc);
    println!(
        "\nmask kernel: {words} encodes in {dt:?} \
         ({:.1} M words/s); sparse kernel computes identically: {}",
        words as f64 / dt.as_secs_f64() / 1e6,
        (0..1000u64).all(|d| mask.encode_checks(d) == sparse.encode_checks(d))
    );
}
